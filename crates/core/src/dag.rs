//! Job dependencies — the Section 5 extension.
//!
//! "If computational scientists also use the system for data analysis of
//! results, then the system will have to distinguish between job types
//! (simulation vs. analysis) and perform the jobs in the correct order
//! (analysis after simulation of a given problem), and make the output of a
//! simulation job available as the input for the corresponding analysis
//! job(s). We will investigate using existing software packages, such as
//! Condor's DAGMan, for managing dependencies between jobs." (Section 5.)
//!
//! [`JobDag`] is that DAGMan-style layer: an acyclic dependency relation
//! over job ids, validated at construction. The engine holds back a job's
//! submission until every parent has completed (the parent's output GUID is
//! then available as the child's input) and cascades a permanent parent
//! failure to all descendants.

use std::collections::{HashMap, HashSet, VecDeque};

use dgrid_resources::JobId;
use serde::{Deserialize, Serialize};

/// An acyclic set of job→job dependencies.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct JobDag {
    /// `parents[j]` must all complete before `j` may be submitted.
    parents: HashMap<JobId, Vec<JobId>>,
}

impl JobDag {
    /// An empty relation (every job independent — the paper's base model).
    pub fn none() -> Self {
        JobDag::default()
    }

    /// Declare that `child` depends on `parent`.
    ///
    /// Duplicate edges are ignored. Cycles are rejected by
    /// [`JobDag::validate`], which the engine calls at construction.
    pub fn add_dependency(&mut self, child: JobId, parent: JobId) -> &mut Self {
        assert_ne!(child, parent, "{child} cannot depend on itself");
        let ps = self.parents.entry(child).or_default();
        if !ps.contains(&parent) {
            ps.push(parent);
        }
        self
    }

    /// Builder-style chain: each job depends on the previous one.
    pub fn chain(jobs: &[JobId]) -> Self {
        let mut dag = JobDag::none();
        for w in jobs.windows(2) {
            dag.add_dependency(w[1], w[0]);
        }
        dag
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Parents of `job` (empty slice if independent).
    pub fn parents_of(&self, job: JobId) -> &[JobId] {
        self.parents.get(&job).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All (child, parents) entries.
    pub fn entries(&self) -> impl Iterator<Item = (JobId, &[JobId])> + '_ {
        self.parents.iter().map(|(&c, ps)| (c, ps.as_slice()))
    }

    /// Build the inverse relation: `children[p]` = jobs waiting on `p`.
    pub fn children_index(&self) -> HashMap<JobId, Vec<JobId>> {
        let mut children: HashMap<JobId, Vec<JobId>> = HashMap::new();
        for (&child, parents) in &self.parents {
            for &p in parents {
                children.entry(p).or_default().push(child);
            }
        }
        for kids in children.values_mut() {
            kids.sort_unstable();
        }
        children
    }

    /// Check that every referenced job exists and the relation is acyclic
    /// (Kahn's algorithm). Panics with a description on violation.
    pub fn validate(&self, known: &HashSet<JobId>) {
        for (&child, parents) in &self.parents {
            assert!(known.contains(&child), "dependency on unknown job {child}");
            for p in parents {
                assert!(known.contains(p), "{child} depends on unknown job {p}");
            }
        }
        // Kahn: repeatedly remove zero-in-degree nodes.
        let mut indegree: HashMap<JobId, usize> = HashMap::new();
        for (&child, parents) in &self.parents {
            *indegree.entry(child).or_insert(0) += parents.len();
            for &p in parents {
                indegree.entry(p).or_insert(0);
            }
        }
        let mut queue: VecDeque<JobId> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&j, _)| j)
            .collect();
        let children = self.children_index();
        let mut removed = 0usize;
        while let Some(j) = queue.pop_front() {
            removed += 1;
            for &c in children.get(&j).map(Vec::as_slice).unwrap_or(&[]) {
                let d = indegree.get_mut(&c).expect("indexed");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(c);
                }
            }
        }
        assert_eq!(
            removed,
            indegree.len(),
            "dependency cycle among {} jobs",
            indegree.len() - removed
        );
    }

    /// Transitive descendants of `job` (jobs that can never run if `job`
    /// permanently fails).
    pub fn descendants_of(&self, job: JobId) -> Vec<JobId> {
        let children = self.children_index();
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut stack = vec![job];
        while let Some(j) = stack.pop() {
            for &c in children.get(&j).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.insert(c) {
                    out.push(c);
                    stack.push(c);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<JobId> {
        v.iter().map(|&i| JobId(i)).collect()
    }

    #[test]
    fn chain_builder() {
        let dag = JobDag::chain(&ids(&[1, 2, 3]));
        assert_eq!(dag.parents_of(JobId(2)), &[JobId(1)]);
        assert_eq!(dag.parents_of(JobId(3)), &[JobId(2)]);
        assert!(dag.parents_of(JobId(1)).is_empty());
    }

    #[test]
    fn validate_accepts_dags() {
        let mut dag = JobDag::none();
        dag.add_dependency(JobId(3), JobId(1));
        dag.add_dependency(JobId(3), JobId(2));
        dag.add_dependency(JobId(4), JobId(3));
        let known: HashSet<JobId> = ids(&[1, 2, 3, 4]).into_iter().collect();
        dag.validate(&known);
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn validate_rejects_cycles() {
        let mut dag = JobDag::none();
        dag.add_dependency(JobId(1), JobId(2));
        dag.add_dependency(JobId(2), JobId(3));
        dag.add_dependency(JobId(3), JobId(1));
        let known: HashSet<JobId> = ids(&[1, 2, 3]).into_iter().collect();
        dag.validate(&known);
    }

    #[test]
    #[should_panic(expected = "unknown job")]
    fn validate_rejects_dangling_parents() {
        let mut dag = JobDag::none();
        dag.add_dependency(JobId(1), JobId(99));
        let known: HashSet<JobId> = ids(&[1]).into_iter().collect();
        dag.validate(&known);
    }

    #[test]
    #[should_panic(expected = "cannot depend on itself")]
    fn self_dependency_rejected() {
        JobDag::none().add_dependency(JobId(1), JobId(1));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut dag = JobDag::none();
        dag.add_dependency(JobId(2), JobId(1));
        dag.add_dependency(JobId(2), JobId(1));
        assert_eq!(dag.parents_of(JobId(2)).len(), 1);
    }

    #[test]
    fn descendants_are_transitive() {
        // 1 -> 2 -> 4, 1 -> 3, diamond back to 5.
        let mut dag = JobDag::none();
        dag.add_dependency(JobId(2), JobId(1));
        dag.add_dependency(JobId(3), JobId(1));
        dag.add_dependency(JobId(4), JobId(2));
        dag.add_dependency(JobId(5), JobId(3));
        dag.add_dependency(JobId(5), JobId(4));
        assert_eq!(dag.descendants_of(JobId(1)), ids(&[2, 3, 4, 5]));
        assert_eq!(dag.descendants_of(JobId(2)), ids(&[4, 5]));
        assert!(dag.descendants_of(JobId(5)).is_empty());
    }

    #[test]
    fn children_index_inverts_parents() {
        let mut dag = JobDag::none();
        dag.add_dependency(JobId(3), JobId(1));
        dag.add_dependency(JobId(2), JobId(1));
        let idx = dag.children_index();
        assert_eq!(idx[&JobId(1)], ids(&[2, 3]));
    }
}
