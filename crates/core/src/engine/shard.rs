//! Space-parallel execution of a single replication: the sharded
//! conservative-window kernel.
//!
//! The sequential kernel dispatches one event at a time against global
//! state. This module executes *windows* of events instead: nodes are
//! partitioned into `S` shards by a stable hash of their index, the
//! calendar queue batch-pops every event inside a conservative virtual-time
//! window ([`EventQueue::drain_window`](dgrid_sim::EventQueue::drain_window)),
//! and the events whose effects are provably confined to one run node —
//! arrivals at the run-node queue, completions, sandbox kills — execute in
//! parallel against shard-local copies of that state. Everything a shard
//! cannot prove local (matchmaking, leases, owner recovery, node churn,
//! cross-shard messages) is emitted as a timestamped *envelope operation*
//! and applied at a deterministic barrier that walks the window in
//! `(virtual_time, seq)` order.
//!
//! The window width is the network's minimum one-hop latency
//! ([`Network::min_latency`]): no effect of an event at time `t` can reach
//! another entity before `t + lookahead`, so events inside one window are
//! causally independent across shards. Latency spikes only stretch
//! deliveries (their factor is validated `>= 1`), so they shrink nothing —
//! the lookahead is sound under every fault plan.
//!
//! # Determinism contract
//!
//! For a fixed shard count `S`, the observer byte stream and every
//! [`SimReport`](crate::SimReport) counter are **identical at every worker
//! thread count**, including one: shard assignment is a pure hash of the
//! node index, each shard owns derived RNG streams keyed by its shard index
//! (never by a thread id), shards never read each other's state inside a
//! window, and the barrier merges results in `(virtual_time, seq)` order
//! regardless of which thread produced them. `S` itself is part of the
//! configuration: runs with different shard counts are different (equally
//! valid) simulations, which is why the CLI pins
//! [`Engine::DEFAULT_SHARDS`] for every thread count.
//!
//! # How locality is proven, per window round
//!
//! An event is executed on a shard only when classification — a read-only,
//! strictly deterministic pass over the batch — shows its effects stay on
//! its *home node*:
//!
//! * `ArriveAtRunNode` with a valid epoch, an assigned, live run node;
//! * `Complete`/`SandboxKill` on a live node (valid epoch ⇒ full commit,
//!   superseded epoch ⇒ stale-execution release), except the by-reference
//!   result path (it consults the matchmaker) and the checker's
//!   epoch-dedup backdoor;
//! * additionally the home node must be *clean*: every job in its FIFO
//!   queue is terminal, unknown, or assigned to this node — so the chain of
//!   `start_next_on` starts the event can trigger touches only records this
//!   shard checked out. (A valid event's record always satisfies
//!   `run_node == home`, so a job can never be claimed by two shards.)
//!
//! Everything else — and every event on an unclean node — dispatches
//! through the ordinary sequential handlers during the barrier walk, which
//! runs after shard state commits back, so the two execution paths never
//! observe half-merged state.

use std::collections::HashMap;

use dgrid_resources::{ClientId, JobId};
use dgrid_sim::fault::{Delivery, Endpoint, Network};
use dgrid_sim::rng::{self, SimRng};
use dgrid_sim::{SimDuration, SimTime};
use rand::Rng;
use rayon::prelude::*;

use super::{Engine, Event};
use crate::config::EngineConfig;
use crate::job::{FailureReason, JobRecord, JobState};
use crate::node::{GridNode, GridNodeId, QueuedJob};
use crate::trace::TraceEvent;

/// Below this many local events in a round, dispatching to the pool costs
/// more than it saves; run the shards inline (in shard order, which by
/// construction produces the identical result).
const PARALLEL_DISPATCH_FLOOR: usize = 32;

/// The shard a node's events execute on: a stable hash of the node index,
/// independent of thread count, event history, and everything else.
pub(super) fn shard_of(node: GridNodeId, shards: usize) -> usize {
    (rng::splitmix64(u64::from(node.0)) % shards as u64) as usize
}

/// Per-shard mutable context that persists across windows: the shard's own
/// network-latency RNG stream and fault-network facade, both derived from
/// the root seed and the *shard index* so the draw sequence is a pure
/// function of the configuration.
pub(super) struct ShardState {
    rng_net: SimRng,
    net: Network,
}

/// One shard-confined event, post-classification.
#[derive(Clone, Copy)]
enum LocalEv {
    /// Valid-epoch arrival at a live assigned run node.
    Arrive { job: JobId },
    /// Completion on a live node; `valid` distinguishes a current-epoch
    /// commit from a superseded duplicate execution winding down. `epoch`
    /// is the event's epoch, needed by the stale path to release only its
    /// own execution.
    Complete { job: JobId, epoch: u32, valid: bool },
    /// Sandbox kill on a live node, same `valid` split.
    Kill { job: JobId, epoch: u32, valid: bool },
}

/// Everything a shard may not do itself, emitted in execution order and
/// applied by the barrier at the item's virtual time.
enum EnvOp {
    /// Observer emission (buffered, flushed time-sorted at window close).
    Emit(TraceEvent),
    /// Future event for the global calendar.
    Schedule { at: SimTime, event: Event },
    /// Report-counter mutation.
    Report(ReportOp),
    /// One job left the in-flight set (completion commit).
    OutstandingDec,
    /// Terminal failure: runs the full sequential `fail_job` (terminal
    /// guard, DAG cascade, owner detach) against committed state.
    FailJob { job: JobId, reason: FailureReason },
    /// Remove the job from its peer owner's owned set.
    DetachOwner(JobId),
    /// DAG children of a completed parent become submittable.
    ReleaseDependents(JobId),
}

/// The [`SimReport`](crate::SimReport) mutations shard handlers perform,
/// replayed in barrier order so histogram push order stays deterministic.
enum ReportOp {
    MessagesLost,
    DuplicateExecution,
    SandboxKill,
    HeartbeatMessages(u64),
    JobCompleted,
    WaitPush { client: ClientId, wait: f64 },
    TurnaroundPush(f64),
}

/// One shard's round output: its checked-out state plus the per-batch
/// global effects it emitted.
type ShardRunResult = (ShardWork, Vec<(usize, Vec<EnvOp>)>);

/// Checked-out state one shard mutates during a window round.
struct ShardWork {
    shard: usize,
    state: ShardState,
    /// `(batch index, virtual time, event)` in `(time, seq)` order.
    events: Vec<(usize, SimTime, LocalEv, GridNodeId)>,
    nodes: HashMap<u32, GridNode>,
    jobs: HashMap<JobId, JobRecord>,
}

impl Engine {
    /// The windowed outer loop: returns the makespan (time of the last
    /// processed event), like the sequential loop.
    pub(super) fn run_sharded_loop(&mut self, horizon: SimTime) -> SimTime {
        let shards = self.shards.expect("sharded loop without shard count");
        self.init_shard_states(shards);
        // A zero floor (per-hop latency 0, or full jitter) degenerates to
        // one-instant windows — still correct, just minimal batching.
        let lookahead = self.net.min_latency().max(SimDuration::from_nanos(1));
        let hard_end = horizon + SimDuration::from_nanos(1);
        let mut makespan = SimTime::ZERO;
        self.window_obs = Some(Vec::new());
        while self.outstanding > 0 {
            let Some(t0) = self.queue.peek_time() else {
                break;
            };
            if t0 > horizon {
                break;
            }
            let wend = (t0 + lookahead).min(hard_end);
            // Fixpoint rounds: effects landing inside the still-open window
            // (job starts chaining on a node, zero-delay retries) drain in
            // follow-up rounds at the same horizon until none remain.
            while self.outstanding > 0 {
                let batch = self.queue.drain_window(wend);
                let Some(&(last_at, _, _)) = batch.last() else {
                    break;
                };
                makespan = makespan.max(last_at);
                self.run_window_round(batch, shards);
            }
            self.flush_window();
        }
        // The horizon sweep and final accounting emit directly.
        if let Some(buf) = self.window_obs.take() {
            debug_assert!(buf.is_empty(), "unflushed window emissions");
        }
        makespan
    }

    fn init_shard_states(&mut self, shards: usize) {
        if !self.shard_states.is_empty() {
            return;
        }
        for s in 0..shards {
            // Salted high above the engine's stream ids so no shard stream
            // collides with a global one (or with another shard's).
            let salt = (s as u64 + 1) << 32;
            self.shard_states.push(Some(ShardState {
                rng_net: rng::rng_for(self.cfg.seed, rng::streams::NETWORK ^ salt),
                net: Network::new(
                    self.cfg.latency,
                    self.net.plan().clone(),
                    rng::rng_for(self.cfg.seed, rng::streams::FAULT_INJECTION ^ salt),
                ),
            }));
        }
    }

    /// Flush the window's buffered emissions to the observer, sorted by
    /// `(time, commit order)` — the sort is stable, so same-instant events
    /// keep their barrier order and the stream stays nondecreasing in time.
    fn flush_window(&mut self) {
        let Some(buf) = self.window_obs.as_mut() else {
            return;
        };
        if buf.is_empty() {
            return;
        }
        let mut events = std::mem::take(buf);
        events.sort_by_key(|&(at, _)| at);
        for (at, ev) in events {
            self.observer.on_event(at, ev);
        }
    }

    /// True iff every job queued on `home` is terminal, unknown, or
    /// assigned to `home` — the condition under which a shard's
    /// `start_next_on` chain can only touch records it checked out.
    fn node_clean(&self, home: GridNodeId) -> bool {
        self.nodes.get(home).queued_jobs().all(|j| {
            self.jobs
                .get(j)
                .is_none_or(|r| r.state.is_terminal() || r.run_node == Some(home))
        })
    }

    /// Classify → shard-execute → barrier-merge one drained batch.
    fn run_window_round(&mut self, batch: Vec<(SimTime, u64, Event)>, shards: usize) {
        // ---- Classification (sequential, read-only) ----
        let mut per_shard: Vec<Vec<(usize, SimTime, LocalEv, GridNodeId)>> =
            vec![Vec::new(); shards];
        let mut clean_cache: HashMap<u32, bool> = HashMap::new();
        for (i, (at, _seq, ev)) in batch.iter().enumerate() {
            let candidate = match *ev {
                Event::ArriveAtRunNode { job, epoch } => {
                    if !self.epoch_valid(job, epoch) {
                        None
                    } else {
                        let rec = self.jobs.get(job).expect("valid epoch implies record");
                        match rec.run_node {
                            Some(run) if self.nodes.is_alive(run) => {
                                Some((run, LocalEv::Arrive { job }))
                            }
                            _ => None,
                        }
                    }
                }
                Event::Complete { job, epoch, node } => {
                    if !self.nodes.is_alive(node) || self.cfg.return_results_by_reference {
                        None
                    } else if self.epoch_valid(job, epoch) {
                        let running = self
                            .nodes
                            .get(node)
                            .running_job()
                            .is_some_and(|q| q.job == job);
                        // A valid completion not matching the running job is
                        // an invariant breach; the sequential handler owns
                        // reporting it.
                        running.then_some((
                            node,
                            LocalEv::Complete {
                                job,
                                epoch,
                                valid: true,
                            },
                        ))
                    } else if self.cfg.check_disable_epoch_dedup {
                        // The backdoor may double-commit; keep it sequential.
                        None
                    } else {
                        Some((
                            node,
                            LocalEv::Complete {
                                job,
                                epoch,
                                valid: false,
                            },
                        ))
                    }
                }
                Event::SandboxKill { job, epoch, node } => {
                    if !self.nodes.is_alive(node) {
                        None
                    } else if self.epoch_valid(job, epoch) {
                        let running = self
                            .nodes
                            .get(node)
                            .running_job()
                            .is_some_and(|q| q.job == job);
                        running.then_some((
                            node,
                            LocalEv::Kill {
                                job,
                                epoch,
                                valid: true,
                            },
                        ))
                    } else {
                        Some((
                            node,
                            LocalEv::Kill {
                                job,
                                epoch,
                                valid: false,
                            },
                        ))
                    }
                }
                _ => None,
            };
            let Some((home, lev)) = candidate else {
                continue;
            };
            let clean = match clean_cache.get(&home.0) {
                Some(&c) => c,
                None => {
                    let c = self.node_clean(home);
                    clean_cache.insert(home.0, c);
                    c
                }
            };
            if !clean {
                continue; // dispatch sequentially at the barrier
            }
            per_shard[shard_of(home, shards)].push((i, *at, lev, home));
        }

        // ---- Checkout: move home nodes and job records into shard work ----
        let mut works: Vec<ShardWork> = Vec::new();
        for (s, events) in per_shard.into_iter().enumerate() {
            if events.is_empty() {
                continue;
            }
            let state = self.shard_states[s].take().expect("shard state in place");
            let mut work = ShardWork {
                shard: s,
                state,
                events,
                nodes: HashMap::new(),
                jobs: HashMap::new(),
            };
            for &(_, _, lev, home) in &work.events {
                if !work.nodes.contains_key(&home.0) {
                    let node = self.nodes.checkout_node(home);
                    // Everything startable in the FIFO queue rides along so
                    // start_next_on can run entirely shard-side; cleanliness
                    // guarantees these records belong to this node.
                    for j in node.queued_jobs() {
                        if let Some(r) = self.jobs.get(j) {
                            if !r.state.is_terminal() && !work.jobs.contains_key(&j) {
                                debug_assert_eq!(r.run_node, Some(home));
                                work.jobs.insert(j, r.clone());
                            }
                        }
                    }
                    work.nodes.insert(home.0, node);
                }
                let event_job = match lev {
                    LocalEv::Arrive { job } => Some(job),
                    LocalEv::Complete {
                        job, valid: true, ..
                    } => Some(job),
                    _ => None,
                };
                if let Some(job) = event_job {
                    if let std::collections::hash_map::Entry::Vacant(slot) = work.jobs.entry(job) {
                        let r = self.jobs.get(job).expect("classified record");
                        debug_assert_eq!(r.run_node, Some(home));
                        slot.insert(r.clone());
                    }
                }
            }
            works.push(work);
        }

        // ---- Phase A: independent shard execution ----
        let total_local: usize = works.iter().map(|w| w.events.len()).sum();
        let cfg = &self.cfg;
        let run_one = |mut w: ShardWork| {
            let ops = exec_shard(cfg, &mut w);
            (w, ops)
        };
        let results: Vec<ShardRunResult> =
            if total_local >= PARALLEL_DISPATCH_FLOOR && rayon::Pool::current_threads() > 1 {
                works.into_par_iter().map(run_one).collect()
            } else {
                works.into_iter().map(run_one).collect()
            };

        // ---- Commit shard state back (disjoint slots; sorted for a
        // deterministic walk even though order cannot affect the outcome) --
        let n = batch.len();
        let mut ops_by_item: Vec<Option<Vec<EnvOp>>> = (0..n).map(|_| None).collect();
        for (mut w, ops) in results {
            let mut nodes: Vec<(u32, GridNode)> = w.nodes.drain().collect();
            nodes.sort_unstable_by_key(|e| e.0);
            for (id, node) in nodes {
                self.nodes.commit_node(GridNodeId(id), node);
            }
            let mut jobs: Vec<(JobId, JobRecord)> = w.jobs.drain().collect();
            jobs.sort_unstable_by_key(|e| e.0);
            for (id, rec) in jobs {
                *self.jobs.get_mut(id).expect("checked-out job exists") = rec;
            }
            self.shard_states[w.shard] = Some(w.state);
            for (idx, o) in ops {
                ops_by_item[idx] = Some(o);
            }
        }

        // ---- Barrier walk: apply envelopes and dispatch global events in
        // (time, seq) order ----
        for (i, (at, _seq, ev)) in batch.into_iter().enumerate() {
            match ops_by_item[i].take() {
                Some(ops) => {
                    for op in ops {
                        self.apply_env_op(at, op);
                    }
                }
                None => self.dispatch(at, ev),
            }
        }
    }

    fn apply_env_op(&mut self, at: SimTime, op: EnvOp) {
        match op {
            EnvOp::Emit(ev) => self.emit(at, ev),
            EnvOp::Schedule { at, event } => self.queue.schedule(at, event),
            EnvOp::Report(r) => match r {
                ReportOp::MessagesLost => self.report.messages_lost += 1,
                ReportOp::DuplicateExecution => self.report.duplicate_executions += 1,
                ReportOp::SandboxKill => self.report.sandbox_kills += 1,
                ReportOp::HeartbeatMessages(n) => self.report.heartbeat_messages += n,
                ReportOp::JobCompleted => self.report.jobs_completed += 1,
                ReportOp::WaitPush { client, wait } => {
                    self.report.wait_time.push(wait);
                    self.report
                        .client_waits
                        .entry(client.0)
                        .or_default()
                        .push(wait);
                }
                ReportOp::TurnaroundPush(t) => self.report.turnaround.push(t),
            },
            EnvOp::OutstandingDec => self.outstanding -= 1,
            EnvOp::FailJob { job, reason } => self.fail_job(job, reason, at),
            EnvOp::DetachOwner(job) => self.detach_owner(job),
            EnvOp::ReleaseDependents(job) => self.release_dependents(at, job),
        }
    }
}

/// Run one shard's events, in `(time, seq)` order, against its checked-out
/// state. Returns each event's envelope operations by batch index.
fn exec_shard(cfg: &EngineConfig, work: &mut ShardWork) -> Vec<(usize, Vec<EnvOp>)> {
    let events = std::mem::take(&mut work.events);
    let mut out = Vec::with_capacity(events.len());
    for (idx, at, lev, home) in events {
        let mut node = work.nodes.remove(&home.0).expect("checked-out node");
        let mut exec = ShardExec {
            cfg,
            state: &mut work.state,
            jobs: &mut work.jobs,
            ops: Vec::new(),
        };
        match lev {
            LocalEv::Arrive { job } => exec.arrive(at, job, home, &mut node),
            LocalEv::Complete {
                job, valid: true, ..
            } => exec.complete_valid(at, job, home, &mut node),
            LocalEv::Complete {
                job,
                epoch,
                valid: false,
            } => exec.release_stale(at, job, epoch, home, &mut node, true),
            LocalEv::Kill {
                job, valid: true, ..
            } => exec.kill_valid(at, job, home, &mut node),
            LocalEv::Kill {
                job,
                epoch,
                valid: false,
            } => exec.release_stale(at, job, epoch, home, &mut node, false),
        }
        let ops = exec.ops;
        work.nodes.insert(home.0, node);
        out.push((idx, ops));
    }
    out
}

/// Shard-side mirror of the engine's run-node handlers. Each method is the
/// sequential handler of the same name restricted to home-node state, with
/// every global effect pushed as an [`EnvOp`] in the sequential handler's
/// execution order.
struct ShardExec<'a> {
    cfg: &'a EngineConfig,
    state: &'a mut ShardState,
    jobs: &'a mut HashMap<JobId, JobRecord>,
    ops: Vec<EnvOp>,
}

impl ShardExec<'_> {
    /// Mirror of `Engine::send_message` on the shard's own network state.
    fn send_message(&mut self, now: SimTime, from: Endpoint, to: Endpoint, hops: u32) -> Delivery {
        let d = self
            .state
            .net
            .send(&mut self.state.rng_net, now, from, to, hops);
        if !d.is_delivered() {
            self.ops.push(EnvOp::Report(ReportOp::MessagesLost));
        }
        d
    }

    /// Mirror of `Engine::backoff_delay` (fault-path only).
    fn backoff_delay(&mut self, attempt: u32) -> SimDuration {
        let backoff = (self.cfg.backoff_base_secs * 2f64.powi(attempt.min(16) as i32))
            .min(self.cfg.backoff_cap_secs);
        let jitter = self.cfg.backoff_jitter;
        let factor = if jitter > 0.0 {
            1.0 + jitter * (self.state.net.fault_rng().gen::<f64>() * 2.0 - 1.0)
        } else {
            1.0
        };
        SimDuration::from_secs_f64(self.cfg.rpc_timeout_secs + backoff * factor)
    }

    /// Mirror of `Engine::deliver_with_retries`.
    fn deliver_with_retries(
        &mut self,
        now: SimTime,
        from: Endpoint,
        to: Endpoint,
        hops: u32,
    ) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let mut attempt = 0u32;
        loop {
            if let Delivery::Delivered(d) = self.send_message(now + total, from, to, hops) {
                return total + d;
            }
            if attempt >= self.cfg.max_rpc_retries {
                return total + SimDuration::from_secs_f64(self.cfg.backoff_cap_secs);
            }
            total += self.backoff_delay(attempt);
            attempt += 1;
        }
    }

    /// Mirror of `Engine::handle_arrive` past the checks classification
    /// already performed (valid epoch, assigned live run node).
    fn arrive(&mut self, now: SimTime, job: JobId, home: GridNodeId, node: &mut GridNode) {
        let (profile, actual_runtime, arrival_epoch) = {
            let rec = self.jobs.get(&job).expect("checked-out record");
            (rec.profile, rec.actual_runtime_secs, rec.epoch)
        };
        if self.cfg.sandbox.rejects_at_admission(&profile) {
            self.ops.push(EnvOp::Report(ReportOp::SandboxKill));
            self.ops.push(EnvOp::FailJob {
                job,
                reason: FailureReason::SandboxKilled,
            });
            return;
        }
        let runtime = if self.cfg.scale_runtime_by_cpu {
            let cpu = node
                .profile
                .capabilities
                .get(dgrid_resources::ResourceKind::CpuSpeed)
                .max(0.1);
            actual_runtime * self.cfg.reference_cpu_ghz / cpu
        } else {
            actual_runtime
        };
        self.jobs
            .get_mut(&job)
            .expect("checked-out record")
            .queued_at = Some(now);
        if node.running_job().is_none() {
            self.start_job(now, job, home, node, runtime);
        } else {
            node.enqueue_local(QueuedJob {
                job,
                runtime_secs: runtime,
                epoch: arrival_epoch,
            });
            self.jobs.get_mut(&job).expect("checked-out record").state = JobState::Queued;
        }
    }

    /// Mirror of `Engine::start_job`.
    fn start_job(
        &mut self,
        now: SimTime,
        job: JobId,
        home: GridNodeId,
        node: &mut GridNode,
        runtime: f64,
    ) {
        let (epoch, profile, owner) = {
            let rec = self.jobs.get_mut(&job).expect("checked-out record");
            rec.state = JobState::Running;
            if rec.started_at.is_none() {
                rec.started_at = Some(now);
            }
            rec.invalidate();
            (rec.epoch, rec.profile, rec.owner)
        };
        self.ops.push(EnvOp::Emit(TraceEvent::Started {
            job,
            run_node: home,
        }));
        let kill_after = self.cfg.sandbox.kill_after_secs(&profile);
        node.set_running_local(
            QueuedJob {
                job,
                runtime_secs: runtime,
                epoch,
            },
            now + SimDuration::from_secs_f64(runtime),
        );
        match kill_after {
            Some(k) if runtime > k => self.ops.push(EnvOp::Schedule {
                at: now + SimDuration::from_secs_f64(k),
                event: Event::SandboxKill {
                    job,
                    epoch,
                    node: home,
                },
            }),
            _ => self.ops.push(EnvOp::Schedule {
                at: now + SimDuration::from_secs_f64(runtime),
                event: Event::Complete {
                    job,
                    epoch,
                    node: home,
                },
            }),
        }
        if self.state.net.faulty() {
            self.schedule_spurious_detections(now, job, home, runtime, epoch, owner);
        }
    }

    /// Mirror of `Engine::schedule_spurious_detections` on the shard's
    /// fault network (the scans draw from the shard's fault RNG).
    fn schedule_spurious_detections(
        &mut self,
        now: SimTime,
        job: JobId,
        run: GridNodeId,
        runtime: f64,
        epoch: u32,
        owner: Option<crate::job::OwnerRef>,
    ) {
        let Some(owner) = owner else { return };
        let owner_ep = Engine::endpoint_of(owner);
        let run_ep = Endpoint::Node(run.0);
        let period = self.cfg.heartbeat_secs;
        let misses = self.cfg.heartbeat_misses;
        if let Some(t) = self
            .state
            .net
            .first_consecutive_losses(now, run_ep, owner_ep, period, misses, runtime)
        {
            self.ops.push(EnvOp::Schedule {
                at: t,
                event: Event::SpuriousRunFailure { job, epoch },
            });
        }
        if self.cfg.leases_enabled() {
            return;
        }
        if let Some(t) = self
            .state
            .net
            .first_consecutive_losses(now, owner_ep, run_ep, period, misses, runtime)
        {
            self.ops.push(EnvOp::Schedule {
                at: t,
                event: Event::SpuriousOwnerFailure { job, epoch },
            });
        }
    }

    /// Mirror of `Engine::handle_complete`'s valid-epoch direct-result
    /// commit (the by-reference path never classifies local).
    fn complete_valid(&mut self, now: SimTime, job: JobId, home: GridNodeId, node: &mut GridNode) {
        let result_delay =
            self.deliver_with_retries(now, Endpoint::Node(home.0), Endpoint::External, 1);
        let finished = now + result_delay;
        {
            let done = node
                .take_running_local()
                .expect("completion of running job");
            debug_assert_eq!(done.job, job);
            node.busy_secs += done.runtime_secs;
            node.completed_jobs += 1;
        }
        let (was_terminal, queued_at, client, wait, turnaround) = {
            let rec = self.jobs.get_mut(&job).expect("checked-out record");
            let was_terminal = rec.state.is_terminal();
            rec.state = JobState::Completed;
            rec.finished_at = Some(finished);
            (
                was_terminal,
                rec.queued_at,
                rec.profile.client,
                rec.wait_secs(),
                rec.turnaround_secs(),
            )
        };
        if let Some(q) = queued_at {
            let held = now.since(q).as_secs_f64();
            self.ops.push(EnvOp::Report(ReportOp::HeartbeatMessages(
                (held / self.cfg.heartbeat_secs).ceil() as u64,
            )));
        }
        self.ops.push(EnvOp::Report(ReportOp::JobCompleted));
        if let Some(w) = wait {
            self.ops
                .push(EnvOp::Report(ReportOp::WaitPush { client, wait: w }));
        }
        if let Some(t) = turnaround {
            self.ops.push(EnvOp::Report(ReportOp::TurnaroundPush(t)));
        }
        if !was_terminal {
            self.ops.push(EnvOp::OutstandingDec);
        }
        self.ops.push(EnvOp::Emit(TraceEvent::Completed {
            job,
            results_at: finished,
        }));
        self.ops.push(EnvOp::DetachOwner(job));
        self.ops.push(EnvOp::ReleaseDependents(job));
        self.start_next_on(now, home, node);
    }

    /// Mirror of `Engine::handle_sandbox_kill`'s valid-epoch path.
    fn kill_valid(&mut self, now: SimTime, job: JobId, home: GridNodeId, node: &mut GridNode) {
        let finish_at = node.running_finish_at();
        let killed = node.take_running_local().expect("kill of running job");
        debug_assert_eq!(killed.job, job);
        let remaining = finish_at.since(now).as_secs_f64();
        node.busy_secs += (killed.runtime_secs - remaining).max(0.0);
        self.ops.push(EnvOp::Report(ReportOp::SandboxKill));
        self.ops.push(EnvOp::FailJob {
            job,
            reason: FailureReason::SandboxKilled,
        });
        self.start_next_on(now, home, node);
    }

    /// Mirror of `Engine::release_stale_execution`: a stale event may only
    /// release an execution of its own (job, epoch).
    fn release_stale(
        &mut self,
        now: SimTime,
        job: JobId,
        epoch: u32,
        home: GridNodeId,
        node: &mut GridNode,
        ran_to_completion: bool,
    ) {
        let held = node
            .running_job()
            .is_some_and(|q| q.job == job && q.epoch == epoch);
        if !held {
            return;
        }
        let finish_at = node.running_finish_at();
        let stale = node.take_running_local().expect("checked above");
        let credit = if ran_to_completion {
            stale.runtime_secs
        } else {
            let remaining = finish_at.since(now).as_secs_f64();
            (stale.runtime_secs - remaining).max(0.0)
        };
        node.busy_secs += credit;
        self.ops.push(EnvOp::Report(ReportOp::DuplicateExecution));
        self.start_next_on(now, home, node);
    }

    /// Mirror of `Engine::start_next_on`. A queued job missing from the
    /// checked-out records is terminal or unknown (classification would
    /// not have marked the node clean otherwise) — skipped, exactly like
    /// the sequential skip rule.
    fn start_next_on(&mut self, now: SimTime, home: GridNodeId, node: &mut GridNode) {
        while let Some(q) = node.pop_queue_local() {
            let startable = self
                .jobs
                .get(&q.job)
                .is_some_and(|r| !r.state.is_terminal());
            if startable {
                self.start_job(now, q.job, home, node, q.runtime_secs);
                return;
            }
        }
    }
}
