//! CAN-based matchmaking (Sections 3.2–3.3).
//!
//! Nodes and jobs are embedded into a 4-dimensional CAN space: one dimension
//! per resource type plus the **virtual dimension** with uniformly random
//! coordinates, which breaks up clusters of identical nodes and spreads
//! identical jobs over multiple zones. A job routes to the zone containing
//! its requirement point; that zone's owner builds a candidate list from
//! itself and its zone neighbours, keeps those able to run the job, and
//! picks the approximately least-loaded candidate using load information
//! periodically exchanged between neighbours — i.e. deliberately **stale**
//! load readings, refreshed on the engine's maintenance tick.
//!
//! The paper words the candidate rule as neighbours "at least as capable as
//! the original owner in all dimensions, but more capable in at least one".
//! Read literally that excludes *equally* capable neighbours — yet spreading
//! load across stacks of identical nodes separated only by the virtual
//! dimension is the stated purpose of that dimension, so we use the
//! inclusive rule (all neighbours satisfying the job's constraints). When a
//! zone's owner cannot run the job and no neighbour can either, the job
//! climbs towards strictly-dominating neighbours until a capable region is
//! reached.
//!
//! The **improved** variant adds the paper's load-pushing extension: "a
//! fixed amount of current system load information is propagated along each
//! dimension", and a job landing in a loaded region is pushed into
//! less-loaded upper regions (farther from the origin) before matchmaking,
//! so the capable-but-idle nodes far from the origin absorb the
//! lightly-constrained jobs that would otherwise pile up on the origin
//! zone's owner.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use dgrid_can::{CanConfig, CanNetwork, CanNodeId};
use dgrid_resources::{JobProfile, ResourceSpace, NUM_RESOURCE_DIMS};
use dgrid_sim::rng::{splitmix64, SimRng};
use dgrid_sim::telemetry::{NullHook, SharedHook};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::job::OwnerRef;
use crate::matchmaker::{MatchOutcome, Matchmaker};
use crate::node::{GridNodeId, NodeTable};

/// Tunables for the CAN matchmaker.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CanMmConfig {
    /// Use the virtual dimension (the paper's fix for identical nodes and
    /// jobs). Disabling it reproduces the basic scheme's pathology for the
    /// `A-virt` ablation: node coordinates collapse to a hash jitter and all
    /// identical jobs map to a single zone.
    pub virtual_dim: bool,
    /// Enable the improved load-pushing extension.
    pub push: bool,
    /// Push trigger: push while the current owner's cached load is at least
    /// this many jobs *and* a dominating neighbour's region is less loaded.
    pub push_threshold: f64,
    /// Maximum push hops per job.
    pub max_push_hops: u32,
    /// Maximum uphill steps while searching for a capable candidate.
    pub max_climb_hops: u32,
}

impl Default for CanMmConfig {
    fn default() -> Self {
        CanMmConfig {
            virtual_dim: true,
            push: false,
            push_threshold: 1.0,
            max_push_hops: 8,
            max_climb_hops: 32,
        }
    }
}

impl CanMmConfig {
    /// The improved (load-pushing) configuration.
    pub fn pushing() -> Self {
        CanMmConfig {
            push: true,
            ..CanMmConfig::default()
        }
    }
}

/// The Section 3.2 matchmaker.
pub struct CanMatchmaker {
    cfg: CanMmConfig,
    net: CanNetwork,
    space: ResourceSpace,
    can_of: HashMap<GridNodeId, CanNodeId>,
    grid_of: HashMap<CanNodeId, GridNodeId>,
    /// Stale per-node load snapshot, refreshed on the maintenance tick —
    /// the "load information periodically exchanged between neighboring
    /// nodes".
    /// Placements made since the last exchange bump the sender's view
    /// immediately (optimistic local bookkeeping); neighbourhood pressure
    /// derived from this cache is the "fixed amount of current system load
    /// information" the push extension consults.
    load_cache: HashMap<CanNodeId, f64>,
    lookup_retries: u64,
    hook: SharedHook,
}

const DIMS: usize = NUM_RESOURCE_DIMS + 1; // resources + virtual

/// Failover budget for CAN routes: how many neighbor detours a failed route
/// may take before the caller's own retry/backoff machinery takes over.
const ROUTE_FAILOVER_RETRIES: u32 = 2;

/// Frontier entry for the deficit-ordered run-node search: a min-heap on
/// `(deficit, id)` via reversed `Ord`.
#[derive(PartialEq)]
struct FrontierEntry {
    deficit: f64,
    id: CanNodeId,
}

impl Eq for FrontierEntry {}

impl PartialOrd for FrontierEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FrontierEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: std's BinaryHeap is a max-heap, we want smallest deficit.
        other
            .deficit
            .partial_cmp(&self.deficit)
            .expect("deficits are finite")
            .then(other.id.cmp(&self.id))
    }
}

/// CAN coordinates live in the half-open `[0, 1)`; a capability at the very
/// top of its range normalizes to exactly 1.0 and must be nudged inside.
fn clamp_open(mut p: [f64; DIMS]) -> [f64; DIMS] {
    for x in &mut p {
        *x = x.clamp(0.0, 1.0 - 1e-12);
    }
    p
}

impl CanMatchmaker {
    /// An empty matchmaker over the given resource ranges.
    pub fn new(cfg: CanMmConfig, space: ResourceSpace) -> Self {
        CanMatchmaker {
            cfg,
            net: CanNetwork::new(CanConfig {
                dims: DIMS,
                ..CanConfig::default()
            }),
            space,
            can_of: HashMap::new(),
            grid_of: HashMap::new(),
            load_cache: HashMap::new(),
            lookup_retries: 0,
            hook: Rc::new(RefCell::new(NullHook)),
        }
    }

    /// Report one finished overlay operation to the telemetry hook.
    fn report_lookup(&self, hops: u32, retries: u32) {
        let mut hook = self.hook.borrow_mut();
        hook.on_lookup(hops);
        if retries > 0 {
            hook.on_retry(retries);
            hook.on_failover();
        }
    }

    /// Basic CAN matchmaking with default desktop ranges.
    pub fn with_defaults() -> Self {
        Self::new(CanMmConfig::default(), ResourceSpace::default_desktop())
    }

    /// Improved CAN matchmaking (load pushing) with default ranges.
    pub fn with_push() -> Self {
        Self::new(CanMmConfig::pushing(), ResourceSpace::default_desktop())
    }

    fn node_point(&self, nodes: &NodeTable, node: GridNodeId, rng: &mut SimRng) -> [f64; DIMS] {
        let caps = nodes.get(node).profile.capabilities;
        let base = self.space.node_point(&caps);
        let vcoord = if self.cfg.virtual_dim {
            rng.gen::<f64>()
        } else {
            // Without the virtual dimension identical nodes would make the
            // zone-split degenerate; a hash jitter of ≤ 0.1% keeps the
            // geometry valid while preserving the clustering pathology.
            (splitmix64(u64::from(node.0)) % 1_000_000) as f64 / 1e6 * 1e-3
        };
        clamp_open([base[0], base[1], base[2], vcoord])
    }

    fn job_point(&self, job: &JobProfile, guid: u64) -> [f64; DIMS] {
        let base = self.space.job_point(&job.requirements);
        let vcoord = if self.cfg.virtual_dim {
            (splitmix64(guid) % (1 << 52)) as f64 / (1u64 << 52) as f64
        } else {
            0.5
        };
        clamp_open([base[0], base[1], base[2], vcoord])
    }

    fn cached_load(&self, id: CanNodeId) -> f64 {
        self.load_cache.get(&id).copied().unwrap_or(0.0)
    }

    /// Neighbours of `cur` at least as capable in every dimension.
    ///
    /// With the virtual dimension, *identical* nodes sit in adjacent zones
    /// along the virtual axis; including equals in the candidate list is
    /// what lets "the randomly assigned node and job coordinates act to
    /// break up clusters and spread load more evenly over nodes"
    /// (Section 3.2) — a strict-dominance reading would make identical
    /// neighbours invisible to each other and re-create the pile-up the
    /// virtual dimension exists to fix.
    fn capable_neighbors(&self, nodes: &NodeTable, cur: CanNodeId, strict: bool) -> Vec<CanNodeId> {
        let cur_grid = self.grid_of[&cur];
        let cur_caps = nodes.get(cur_grid).profile.capabilities;
        self.net
            .neighbors(cur)
            .iter()
            .copied()
            .filter(|n| {
                let Some(&g) = self.grid_of.get(n) else {
                    return false;
                };
                if !nodes.is_alive(g) {
                    return false;
                }
                let caps = nodes.get(g).profile.capabilities;
                if strict {
                    caps.strictly_dominates(&cur_caps)
                } else {
                    caps.dominates_or_equals(&cur_caps)
                }
            })
            .collect()
    }

    /// How far a node's capabilities fall short of a job's requirements, in
    /// normalized coordinate units (0 means the node satisfies the job; an
    /// unacceptable OS adds a unit penalty).
    fn requirement_deficit(&self, nodes: &NodeTable, id: CanNodeId, job: &JobProfile) -> f64 {
        let g = self.grid_of[&id];
        let caps = nodes.get(g).profile.capabilities;
        let cap_pt = self.space.node_point(&caps);
        let req_pt = self.space.job_point(&job.requirements);
        let mut deficit = 0.0;
        for d in 0..NUM_RESOURCE_DIMS {
            deficit += (req_pt[d] - cap_pt[d]).max(0.0);
        }
        if !job.requirements.os.accepts(caps.os) {
            deficit += 1.0;
        }
        deficit
    }

    /// Local placement pressure around `at` for this job: the smallest
    /// believed load among `at` and its neighbours that can run the job
    /// (`+∞` when none can). Low pressure means the region has a free
    /// capable node; high pressure means a pile-up is forming here.
    fn local_pressure(&self, nodes: &NodeTable, at: CanNodeId, job: &JobProfile) -> f64 {
        std::iter::once(at)
            .chain(self.net.neighbors(at).iter().copied())
            .filter(|c| {
                self.grid_of.get(c).is_some_and(|&g| {
                    nodes.is_alive(g)
                        && job
                            .requirements
                            .satisfied_by(&nodes.get(g).profile.capabilities)
                })
            })
            .map(|c| self.cached_load(c))
            .fold(f64::INFINITY, f64::min)
    }

    /// The improved scheme: before matchmaking, push the job out of loaded
    /// regions towards less-pressured dominating regions "farther from the
    /// origin", so capable-but-idle nodes absorb jobs that would otherwise
    /// pile up where the requirement point lands. Returns the new owner and
    /// hops spent.
    fn push_job(&self, nodes: &NodeTable, start: CanNodeId, job: &JobProfile) -> (CanNodeId, u32) {
        let mut cur = start;
        let mut hops = 0u32;
        while hops < self.cfg.max_push_hops {
            let here = self.local_pressure(nodes, cur, job);
            if here < self.cfg.push_threshold {
                break; // a capable node nearby is free enough: place here
            }
            // Move towards an at-least-as-capable neighbouring region with
            // strictly lower pressure.
            let next = self
                .capable_neighbors(nodes, cur, false)
                .into_iter()
                .map(|n| (self.local_pressure(nodes, n, job), n))
                .filter(|(p, _)| *p < here)
                .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            match next {
                Some((_, n)) => {
                    cur = n;
                    hops += 1;
                }
                None => break,
            }
        }
        (cur, hops)
    }
}

impl Matchmaker for CanMatchmaker {
    fn name(&self) -> &'static str {
        if self.cfg.push {
            "can-push"
        } else if self.cfg.virtual_dim {
            "can"
        } else {
            "can-novirt"
        }
    }

    fn on_join(&mut self, nodes: &NodeTable, node: GridNodeId, rng: &mut SimRng) {
        let p = self.node_point(nodes, node, rng);
        let cid = self.net.join(&p);
        self.can_of.insert(node, cid);
        self.grid_of.insert(cid, node);
    }

    fn on_leave(&mut self, _nodes: &NodeTable, node: GridNodeId, graceful: bool) {
        let cid = self
            .can_of
            .remove(&node)
            .expect("leave of node never joined");
        self.grid_of.remove(&cid);
        self.load_cache.remove(&cid);
        if graceful {
            self.net.leave(cid);
        } else {
            self.net.fail(cid);
        }
    }

    fn assign_owner(
        &mut self,
        nodes: &NodeTable,
        job: &JobProfile,
        guid: u64,
        injection: GridNodeId,
        _rng: &mut SimRng,
    ) -> Option<(OwnerRef, u32)> {
        let entry = *self.can_of.get(&injection)?;
        let point = self.job_point(job, guid);
        let (route, retries) =
            self.net
                .route_with_failover(entry, &point, ROUTE_FAILOVER_RETRIES)?;
        self.lookup_retries += u64::from(retries);
        let mut owner = route.owner;
        let mut hops = route.hops;
        if self.cfg.push {
            let (pushed, push_hops) = self.push_job(nodes, owner, job);
            owner = pushed;
            hops += push_hops;
        }
        let grid = *self.grid_of.get(&owner)?;
        self.report_lookup(hops, retries);
        Some((OwnerRef::Peer(grid), hops))
    }

    fn find_run_node(
        &mut self,
        nodes: &NodeTable,
        owner: OwnerRef,
        job: &JobProfile,
        rng: &mut SimRng,
    ) -> MatchOutcome {
        let Some(owner_grid) = owner.peer() else {
            return MatchOutcome {
                run_node: None,
                hops: 0,
            };
        };
        let Some(&mut_start) = self.can_of.get(&owner_grid) else {
            return MatchOutcome {
                run_node: None,
                hops: 0,
            };
        };
        // Best-first expansion over the zone-neighbour graph, ordered by
        // requirement deficit. At each expanded node the candidate set is
        // the node plus its zone neighbours; the satisfaction filter keeps
        // exactly the candidates able to run the job ("the first criterion
        // in finding a match is whether the job constraints can be met",
        // Section 2) and the approximately least-loaded one wins. The
        // deficit ordering realizes the paper's "search for the closest
        // node whose coordinates in all dimensions meet or exceed the job's
        // requirements": the search heads straight for the capable corner
        // of the space, while the frontier lets it escape regions with no
        // gradient (e.g. an operating-system requirement, which the
        // coordinate geometry cannot express). Each expansion is one
        // forwarding hop; the expansion budget bounds matchmaking cost.
        use std::collections::BinaryHeap;
        let mut visited: std::collections::BTreeSet<CanNodeId> = std::collections::BTreeSet::new();
        let mut frontier: BinaryHeap<FrontierEntry> = BinaryHeap::new();
        let start_deficit = self.requirement_deficit(nodes, mut_start, job);
        frontier.push(FrontierEntry {
            deficit: start_deficit,
            id: mut_start,
        });
        visited.insert(mut_start);
        let mut hops = 0u32;
        let mut expansions = 0u32;

        while let Some(FrontierEntry { id: cur, .. }) = frontier.pop() {
            if expansions > self.cfg.max_climb_hops {
                break;
            }
            if expansions > 0 {
                hops += 1; // forwarding the search to the next region
            }
            expansions += 1;

            let mut candidates: Vec<CanNodeId> = self.net.neighbors(cur).iter().copied().collect();
            candidates.push(cur);

            // Among candidates able to run the job, pick the least loaded
            // (stale cached loads; random tie-break).
            let mut best: Option<(f64, CanNodeId)> = None;
            let mut ties = 0u32;
            for c in candidates.iter().copied() {
                let Some(&g) = self.grid_of.get(&c) else {
                    continue;
                };
                if !nodes.is_alive(g)
                    || !job
                        .requirements
                        .satisfied_by(&nodes.get(g).profile.capabilities)
                {
                    continue;
                }
                let load = self.cached_load(c);
                match best {
                    None => {
                        best = Some((load, c));
                        ties = 1;
                    }
                    Some((b, _)) if load < b => {
                        best = Some((load, c));
                        ties = 1;
                    }
                    Some((b, _)) if load == b => {
                        ties += 1;
                        if rng.gen_range(0..ties) == 0 {
                            best = Some((load, c));
                        }
                    }
                    _ => {}
                }
            }
            if let Some((_, c)) = best {
                // Optimistic local bookkeeping: the placing owner knows it
                // just handed this candidate a job, so its view of that
                // candidate's load rises immediately even though the global
                // exchange only refreshes on the maintenance tick. Without
                // this, a burst of identical jobs inside one exchange period
                // would all pick the same "least-loaded" victim.
                *self.load_cache.entry(c).or_insert(0.0) += 1.0;
                self.report_lookup(hops + 1, 0);
                return MatchOutcome {
                    run_node: Some(self.grid_of[&c]),
                    hops: hops + 1, // job transfer to the chosen node
                };
            }

            for n in self.net.neighbors(cur).iter().copied() {
                if visited.insert(n) && self.grid_of.get(&n).is_some_and(|&g| nodes.is_alive(g)) {
                    frontier.push(FrontierEntry {
                        deficit: self.requirement_deficit(nodes, n, job),
                        id: n,
                    });
                }
            }
        }
        self.report_lookup(hops, 0);
        MatchOutcome {
            run_node: None,
            hops,
        }
    }

    fn reassign_owner(
        &mut self,
        nodes: &NodeTable,
        job: &JobProfile,
        guid: u64,
        rng: &mut SimRng,
    ) -> Option<(OwnerRef, u32)> {
        // Re-route the job point from a random live entry: the zone that
        // now contains the point has a (new) owner after takeover.
        let entry = self.net.random_node(rng)?;
        let point = self.job_point(job, guid);
        let (route, retries) =
            self.net
                .route_with_failover(entry, &point, ROUTE_FAILOVER_RETRIES)?;
        self.lookup_retries += u64::from(retries);
        let grid = *self.grid_of.get(&route.owner)?;
        if !nodes.is_alive(grid) {
            return None;
        }
        self.report_lookup(route.hops, retries);
        Some((OwnerRef::Peer(grid), route.hops))
    }

    fn tick(&mut self, nodes: &NodeTable) {
        // Periodic neighbour load exchange: refresh the stale caches.
        self.load_cache.clear();
        for id in self.net.alive_ids() {
            if let Some(&g) = self.grid_of.get(&id) {
                self.load_cache.insert(id, nodes.get(g).load() as f64);
            }
        }
    }

    fn resolve_guid(&mut self, _nodes: &NodeTable, guid: u64, rng: &mut SimRng) -> Option<u32> {
        // Result pointers hash to a point in the space; resolving is one
        // CAN route from the resolver's position.
        let entry = self.net.random_node(rng)?;
        let h = splitmix64(guid);
        let point: Vec<f64> = (0..DIMS)
            .map(|i| ((h >> (i * 13)) & 0xFFFF) as f64 / 65536.0)
            .collect();
        let (route, retries) =
            self.net
                .route_with_failover(entry, &point, ROUTE_FAILOVER_RETRIES)?;
        self.lookup_retries += u64::from(retries);
        self.report_lookup(route.hops, retries);
        Some(route.hops)
    }

    fn take_lookup_retries(&mut self) -> u64 {
        std::mem::take(&mut self.lookup_retries)
    }

    fn set_telemetry_hook(&mut self, hook: SharedHook) {
        self.hook = hook;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeTable;
    use dgrid_resources::{
        Capabilities, ClientId, JobId, JobProfile, JobRequirements, NodeProfile, OsType,
        ResourceKind,
    };
    use dgrid_sim::rng::rng_for;

    fn setup(cfg: CanMmConfig, n: usize) -> (CanMatchmaker, NodeTable, SimRng) {
        let profiles: Vec<NodeProfile> = (0..n)
            .map(|i| {
                NodeProfile::new(Capabilities::new(
                    0.5 + (i % 8) as f64 * 0.45,
                    2f64.powi((i % 6) as i32 - 2),
                    10.0 + (i % 40) as f64 * 12.0,
                    OsType::Linux,
                ))
            })
            .collect();
        let nodes = NodeTable::new(profiles);
        let mut rng = rng_for(13, 13);
        let mut mm = CanMatchmaker::new(cfg, ResourceSpace::default_desktop());
        for id in nodes.alive_ids() {
            mm.on_join(&nodes, id, &mut rng);
        }
        mm.tick(&nodes);
        (mm, nodes, rng)
    }

    fn job(req: JobRequirements, id: u64) -> JobProfile {
        JobProfile::new(JobId(id), ClientId(0), req, 10.0)
    }

    #[test]
    fn owner_routing_uses_few_hops() {
        let (mut mm, nodes, mut rng) = setup(CanMmConfig::default(), 64);
        let p = job(JobRequirements::unconstrained(), 1);
        for inj in nodes.alive_ids().take(8) {
            let (owner, hops) = mm.assign_owner(&nodes, &p, 555, inj, &mut rng).unwrap();
            assert!(nodes.is_alive(owner.peer().unwrap()));
            assert!(hops <= 30, "CAN routing in a 64-node 4-d space, got {hops}");
        }
    }

    #[test]
    fn virtual_dimension_spreads_identical_jobs() {
        let (mut mm, nodes, mut rng) = setup(CanMmConfig::default(), 64);
        let inj = nodes.alive_ids().next().unwrap();
        // Identical requirements, different GUIDs: distinct owners.
        let owners: std::collections::HashSet<_> = (0..32u64)
            .map(|g| {
                let p = job(JobRequirements::unconstrained(), g);
                mm.assign_owner(&nodes, &p, g.wrapping_mul(0x9E37), inj, &mut rng)
                    .unwrap()
                    .0
            })
            .collect();
        assert!(
            owners.len() >= 4,
            "virtual coords must spread owners, got {}",
            owners.len()
        );
    }

    #[test]
    fn without_virtual_dimension_identical_jobs_collapse() {
        let cfg = CanMmConfig {
            virtual_dim: false,
            ..CanMmConfig::default()
        };
        let (mut mm, nodes, mut rng) = setup(cfg, 64);
        let inj = nodes.alive_ids().next().unwrap();
        let owners: std::collections::HashSet<_> = (0..32u64)
            .map(|g| {
                let p = job(JobRequirements::unconstrained(), g);
                mm.assign_owner(&nodes, &p, g.wrapping_mul(0x9E37), inj, &mut rng)
                    .unwrap()
                    .0
            })
            .collect();
        assert_eq!(
            owners.len(),
            1,
            "all identical jobs land on the origin-zone owner"
        );
    }

    #[test]
    fn match_respects_constraints_via_deficit_search() {
        let (mut mm, nodes, mut rng) = setup(CanMmConfig::default(), 64);
        let p = job(
            JobRequirements::unconstrained()
                .with_min(ResourceKind::CpuSpeed, 3.0)
                .with_min(ResourceKind::Memory, 4.0),
            3,
        );
        let inj = nodes.alive_ids().next().unwrap();
        let (owner, _) = mm.assign_owner(&nodes, &p, 77, inj, &mut rng).unwrap();
        let out = mm.find_run_node(&nodes, owner, &p, &mut rng);
        let run = out.run_node.expect("strong nodes exist in the population");
        assert!(p
            .requirements
            .satisfied_by(&nodes.get(run).profile.capabilities));
    }

    #[test]
    fn placement_updates_the_senders_load_view() {
        let (mut mm, nodes, mut rng) = setup(CanMmConfig::default(), 16);
        let p = job(JobRequirements::unconstrained(), 4);
        let inj = nodes.alive_ids().next().unwrap();
        let (owner, _) = mm.assign_owner(&nodes, &p, 88, inj, &mut rng).unwrap();
        // Repeated matches from the same owner must not all pick the same
        // node even though the NodeTable never changes (optimistic cache).
        let picks: std::collections::HashSet<_> = (0..8)
            .map(|_| {
                mm.find_run_node(&nodes, owner, &p, &mut rng)
                    .run_node
                    .unwrap()
            })
            .collect();
        assert!(
            picks.len() >= 2,
            "optimistic increments must rotate placements"
        );
    }

    #[test]
    fn leave_removes_node_from_space() {
        let (mut mm, mut nodes, mut rng) = setup(CanMmConfig::default(), 16);
        let victim = nodes.alive_ids().nth(3).unwrap();
        nodes.mark_failed(victim);
        mm.on_leave(&nodes, victim, true);
        let p = job(JobRequirements::unconstrained(), 5);
        for _ in 0..16 {
            let inj = nodes.alive_ids().next().unwrap();
            let (owner, _) = mm
                .assign_owner(&nodes, &p, rng.gen(), inj, &mut rng)
                .unwrap();
            assert_ne!(owner.peer(), Some(victim));
            let run = mm
                .find_run_node(&nodes, owner, &p, &mut rng)
                .run_node
                .unwrap();
            assert_ne!(run, victim);
        }
    }

    #[test]
    fn guid_resolution_costs_route_hops() {
        let (mut mm, nodes, mut rng) = setup(CanMmConfig::default(), 64);
        let hops = mm.resolve_guid(&nodes, 4242, &mut rng).unwrap();
        assert!(hops <= 30);
    }
}
