//! Simulation metrics and the final report.

use dgrid_sim::stats::{jains_fairness, OnlineStats, SampleSet, SampleSummary};
use dgrid_sim::telemetry::TimeSeries;
use serde::{Deserialize, Serialize};

/// Everything one simulation run reports — the raw material for every
/// figure and table in `EXPERIMENTS.md`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Matchmaker name ("rn-tree", "can", "can-push", "central").
    pub algorithm: String,
    /// Jobs submitted.
    pub jobs_total: u64,
    /// Jobs that completed and returned results.
    pub jobs_completed: u64,
    /// Jobs that permanently failed.
    pub jobs_failed: u64,
    /// Job wait times, seconds (submission → execution start): Figure 2's
    /// metric. Mean and standard deviation are the paper's reported values.
    pub wait_time: SampleSet,
    /// Turnaround times, seconds (submission → results returned).
    pub turnaround: SampleSet,
    /// Matchmaking cost in overlay hops per successful match.
    pub match_hops: SampleSet,
    /// Owner-assignment routing cost in overlay hops per submission.
    pub owner_hops: SampleSet,
    /// Result publish+resolve cost in overlay hops per completion (only
    /// populated when returning results by reference).
    pub result_hops: SampleSet,
    /// Matchmaking attempts that found no node (before retry).
    pub match_failures: u64,
    /// Run-node failures recovered by the owner (job rematched).
    pub run_recoveries: u64,
    /// Owner failures recovered by the run node (owner reassigned).
    pub owner_recoveries: u64,
    /// Dual failures that forced the client to resubmit.
    pub client_resubmits: u64,
    /// Jobs killed by the sandbox quota policy.
    pub sandbox_kills: u64,
    /// Modeled heartbeat messages: one per held job per heartbeat period
    /// ("the run node must generate heartbeat messages for every job in its
    /// job queue, including jobs that are not yet running", Section 2).
    pub heartbeat_messages: u64,
    /// Abrupt node failures injected.
    pub node_failures: u64,
    /// Graceful (announced) node departures.
    pub graceful_leaves: u64,
    /// Jobs failed because a dependency permanently failed (Section 5
    /// DAG extension).
    pub dependency_failures: u64,
    /// Application-level messages dropped by the injected fault plan, by
    /// loss or by partition, across every message class the engine sends
    /// (submissions, transfers, result returns, leave notifications).
    #[serde(default)]
    pub messages_lost: u64,
    /// Lookup/RPC retries forced by faults: overlay failover detours inside
    /// the DHTs plus engine-level retransmissions after RPC timeouts.
    #[serde(default)]
    pub lookup_retries: u64,
    /// Failure detections triggered by lost heartbeats while both partners
    /// were in fact alive — false positives that nonetheless drive the
    /// paper's recovery protocol for real.
    #[serde(default)]
    pub spurious_detections: u64,
    /// Executions that ran to completion under a superseded job epoch
    /// (at-least-once duplicates whose results were discarded).
    #[serde(default)]
    pub duplicate_executions: u64,
    /// Successful lease renewals recorded at registrars (lease mode only).
    #[serde(default)]
    pub lease_renewals: u64,
    /// Leases that ran out their `ttl + grace` without a renewal.
    #[serde(default)]
    pub lease_expiries: u64,
    /// Expired leases re-granted to a freshly placed owner.
    #[serde(default)]
    pub lease_transfers: u64,
    /// Engine events that referenced a job the engine no longer knows —
    /// an internal invariant breach surfaced as a counter (and a trace
    /// oracle violation) instead of a panic, so one corrupted record
    /// cannot abort a whole replication.
    #[serde(default)]
    pub unknown_job_events: u64,
    /// Bytes the installed stream observer wrote (0 when tracing is off or
    /// the observer is not a stream writer) — the raw material for the
    /// JSONL-vs-binary size ratio `dgrid bench stream` reports.
    #[serde(default)]
    pub stream_bytes_written: u64,
    /// Percentile summary (p50/p95/p99 and friends) of the wait times,
    /// computed once at the end of the run.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub wait_stats: Option<SampleSummary>,
    /// Percentile summary of the turnaround times.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub turnaround_stats: Option<SampleSummary>,
    /// Virtual-time series of grid gauges (queue depth, free nodes,
    /// in-flight jobs, retries, nodes alive), present only when sampling
    /// was enabled on the engine.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub timeseries: Option<TimeSeries>,
    /// Per-client wait-time summaries (key = client id) — the raw material
    /// for the fairness question Section 5 leaves as future work.
    pub client_waits: std::collections::BTreeMap<u32, OnlineStats>,
    /// Jain's fairness index over per-tenant mean wait times, computed once
    /// at the end of the run (scenario tenants map 1:1 onto client ids).
    /// `None` on reports that predate the scenario subsystem.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub tenant_fairness: Option<f64>,
    /// Per-node busy seconds (index = node id), for load-balance analysis.
    pub node_busy_secs: Vec<f64>,
    /// Per-node completed-job counts.
    pub node_jobs: Vec<u64>,
    /// Simulated time when the last job terminated.
    pub makespan_secs: f64,
}

impl SimReport {
    /// Jain's fairness index over per-node executed work — 1.0 is a perfect
    /// balance (the load-balancing claim for the improved CAN).
    pub fn load_fairness(&self) -> f64 {
        jains_fairness(&self.node_busy_secs)
    }

    /// Jain's fairness index over per-client *mean wait times*: how evenly
    /// the system treats competing submitters (Section 5's fairness
    /// question). 1.0 means every client saw the same average wait.
    pub fn client_fairness(&self) -> f64 {
        let means: Vec<f64> = self.client_waits.values().map(OnlineStats::mean).collect();
        jains_fairness(&means)
    }

    /// Per-tenant fairness: the finalized [`SimReport::tenant_fairness`]
    /// when present, else recomputed from the per-client wait summaries
    /// (tenants are clients — a scenario assigns tenant `i` client id `i`).
    pub fn tenant_fairness(&self) -> f64 {
        self.tenant_fairness
            .unwrap_or_else(|| self.client_fairness())
    }

    /// Fraction of submitted jobs that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.jobs_total == 0 {
            return 1.0;
        }
        self.jobs_completed as f64 / self.jobs_total as f64
    }

    /// Mean job wait time in seconds (Figure 2a/2c).
    pub fn mean_wait(&self) -> f64 {
        self.wait_time.mean()
    }

    /// Standard deviation of job wait time in seconds (Figure 2b/2d).
    pub fn std_wait(&self) -> f64 {
        self.wait_time.std_dev()
    }

    /// Summarize hop statistics as `(mean, p99)`.
    pub fn hop_summary(&mut self) -> (f64, f64) {
        let mean = self.match_hops.mean();
        let p99 = self.match_hops.percentile(99.0).unwrap_or(0.0);
        (mean, p99)
    }

    /// Collapse wait times into an online summary (for merging across
    /// replications).
    pub fn wait_summary(&self) -> OnlineStats {
        self.wait_time.to_online()
    }

    /// Total application-level messages this run sent, per accounting
    /// category: overlay routing for owner assignment, matchmaking search,
    /// one transfer per placement, result return, and heartbeats. The price
    /// of removing the central server, measured (experiment `T-overhead`).
    pub fn total_messages(&self) -> f64 {
        let owner_routing: f64 = self.owner_hops.samples().iter().sum();
        let matchmaking: f64 = self.match_hops.samples().iter().sum();
        let transfers = self.match_hops.len() as f64; // owner -> run node
        let results: f64 = if self.result_hops.is_empty() {
            self.jobs_completed as f64 // direct return, one message each
        } else {
            self.result_hops.samples().iter().sum::<f64>() + self.jobs_completed as f64
        };
        owner_routing + matchmaking + transfers + results + self.heartbeat_messages as f64
    }

    /// [`SimReport::total_messages`] per completed job.
    pub fn messages_per_job(&self) -> f64 {
        if self.jobs_completed == 0 {
            return 0.0;
        }
        self.total_messages() / self.jobs_completed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_rate_and_fairness() {
        let mut r = SimReport {
            jobs_total: 10,
            jobs_completed: 9,
            jobs_failed: 1,
            node_busy_secs: vec![5.0, 5.0, 5.0, 5.0],
            ..Default::default()
        };
        assert!((r.completion_rate() - 0.9).abs() < 1e-12);
        assert!((r.load_fairness() - 1.0).abs() < 1e-12);
        r.node_busy_secs = vec![20.0, 0.0, 0.0, 0.0];
        assert!((r.load_fairness() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_sane() {
        let r = SimReport::default();
        assert_eq!(r.completion_rate(), 1.0);
        assert_eq!(r.mean_wait(), 0.0);
        assert_eq!(r.std_wait(), 0.0);
    }

    #[test]
    fn message_accounting() {
        let mut r = SimReport {
            jobs_total: 2,
            jobs_completed: 2,
            heartbeat_messages: 10,
            ..SimReport::default()
        };
        r.owner_hops.push(3.0);
        r.owner_hops.push(5.0);
        r.match_hops.push(4.0);
        r.match_hops.push(6.0);
        // owner 8 + matching 10 + transfers 2 + results 2 + heartbeats 10
        assert!((r.total_messages() - 32.0).abs() < 1e-9);
        assert!((r.messages_per_job() - 16.0).abs() < 1e-9);
        // By-reference results add the lookup hops on top of the transfers.
        r.result_hops.push(7.0);
        assert!((r.total_messages() - 39.0).abs() < 1e-9);
    }

    #[test]
    fn fault_counters_default_when_absent() {
        // Reports serialized before the fault layer existed must still load.
        let r = SimReport::default();
        let mut v: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        let map = v.as_object_mut().unwrap();
        map.remove("messages_lost");
        map.remove("lookup_retries");
        map.remove("spurious_detections");
        map.remove("duplicate_executions");
        map.remove("lease_renewals");
        map.remove("lease_expiries");
        map.remove("lease_transfers");
        map.remove("unknown_job_events");
        let back: SimReport = serde_json::from_value(v).unwrap();
        assert_eq!(back.messages_lost, 0);
        assert_eq!(back.spurious_detections, 0);
        assert_eq!(back.lease_expiries, 0);
        assert_eq!(back.unknown_job_events, 0);
    }

    #[test]
    fn serde_round_trip() {
        let mut r = SimReport {
            algorithm: "rn-tree".into(),
            ..SimReport::default()
        };
        r.wait_time.push(3.0);
        r.wait_time.push(5.0);
        let json = serde_json::to_string(&r).unwrap();
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.algorithm, "rn-tree");
        assert!((back.wait_time.mean() - 4.0).abs() < 1e-12);
    }
}
