//! The pluggable matchmaking interface.

use dgrid_resources::JobProfile;
use dgrid_sim::rng::SimRng;
use dgrid_sim::telemetry::SharedHook;

use crate::config::PlacementPolicy;
use crate::job::OwnerRef;
use crate::node::{GridNodeId, NodeTable};

/// Result of a run-node search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatchOutcome {
    /// The chosen run node, or `None` if no capable node was found this
    /// attempt (the engine retries and eventually fails the job).
    pub run_node: Option<GridNodeId>,
    /// Overlay messages spent on this matchmaking attempt — the paper's
    /// "matchmaking cost".
    pub hops: u32,
}

/// A matchmaking mechanism: Section 3's pluggable heart of the system.
///
/// Implementations keep their own overlay state (Chord ring + RN-Tree, CAN
/// space, or nothing for the centralized baseline) and are driven by the
/// [`Engine`](crate::Engine) through these hooks.
pub trait Matchmaker {
    /// Short identifier used in reports ("rn-tree", "can", "can-push",
    /// "central").
    fn name(&self) -> &'static str;

    /// A node joined the grid (initial population and rejoin after repair).
    fn on_join(&mut self, nodes: &NodeTable, node: GridNodeId, rng: &mut SimRng);

    /// Admit the entire initial population at once — called exactly once by
    /// the engine constructor, before any events run and before the first
    /// maintenance [`Matchmaker::tick`].
    ///
    /// Must be observably equivalent to calling [`Matchmaker::on_join`] for
    /// every alive node in ascending id order (including any RNG draws, so
    /// the event stream stays byte-identical). Overlay matchmakers override
    /// it to bulk-build the substrate via
    /// [`KeyRouter::bulk_join`](dgrid_sim::router::KeyRouter::bulk_join),
    /// skipping the per-join routing-table work that makes naive
    /// construction of a 10⁶-node overlay O(N log N).
    fn bootstrap(&mut self, nodes: &NodeTable, rng: &mut SimRng) {
        for id in nodes.alive_ids() {
            self.on_join(nodes, id, rng);
        }
    }

    /// A node left the grid. `graceful` distinguishes an announced
    /// departure (the peer notifies its overlay neighbours and the owners
    /// of jobs it holds before going away) from an abrupt failure
    /// (discovered only by timeouts).
    fn on_leave(&mut self, nodes: &NodeTable, node: GridNodeId, graceful: bool);

    /// Figure 1, steps 1–2: assign `job` (with overlay GUID `guid`) to an
    /// owner, starting from the `injection` node. Returns the owner and the
    /// overlay hops spent routing, or `None` if the overlay cannot place
    /// the job right now.
    fn assign_owner(
        &mut self,
        nodes: &NodeTable,
        job: &JobProfile,
        guid: u64,
        injection: GridNodeId,
        rng: &mut SimRng,
    ) -> Option<(OwnerRef, u32)>;

    /// Figure 1, step 3: from the owner, find a run node capable of
    /// executing `job`.
    fn find_run_node(
        &mut self,
        nodes: &NodeTable,
        owner: OwnerRef,
        job: &JobProfile,
        rng: &mut SimRng,
    ) -> MatchOutcome;

    /// Recovery: the run node detected the owner's failure and needs a new
    /// owner for `guid` (Section 2's owner-failure path).
    fn reassign_owner(
        &mut self,
        nodes: &NodeTable,
        job: &JobProfile,
        guid: u64,
        rng: &mut SimRng,
    ) -> Option<(OwnerRef, u32)>;

    /// Periodic maintenance: overlay stabilization, aggregate refresh, and
    /// neighbor load exchange. Called by the engine every maintenance
    /// period.
    fn tick(&mut self, nodes: &NodeTable);

    /// Overlay cost (hops) of resolving `guid` from a random live peer.
    ///
    /// Section 2: "the result can be returned to the client as either a
    /// pointer to the result (another GUID) or as the result itself". When
    /// the engine is configured for return-by-reference, the run node
    /// publishes the result under a GUID and the client resolves it — both
    /// are one overlay lookup, costed through this hook. `None` means the
    /// overlay cannot resolve right now (engine falls back to direct
    /// return).
    fn resolve_guid(&mut self, nodes: &NodeTable, guid: u64, rng: &mut SimRng) -> Option<u32> {
        let _ = (nodes, guid, rng);
        None
    }

    /// Drain the count of overlay lookup retries (failover detours that
    /// re-issued a failed lookup) performed since the last call. The engine
    /// folds this into `SimReport::lookup_retries` after each overlay
    /// operation. Matchmakers without an overlay never retry.
    fn take_lookup_retries(&mut self) -> u64 {
        0
    }

    /// Install a [`TelemetryHook`](dgrid_sim::telemetry::TelemetryHook):
    /// overlay operations report lookup hops, failover detours, and
    /// fault-forced retries into it as they happen, without threading the
    /// values through every return type on the path. Matchmakers without
    /// an overlay (the centralized baseline) ignore the hook; the default
    /// does nothing, so not installing one costs nothing.
    fn set_telemetry_hook(&mut self, hook: SharedHook) {
        let _ = hook;
    }

    /// Install the owner [`PlacementPolicy`] the lease subsystem selected.
    /// Under [`PlacementPolicy::LoadAware`] overlay matchmakers probe the
    /// substrate owner *and* its failover peers and place the job on the
    /// least-loaded live candidate instead of blindly accepting the hash
    /// mapping. The default ignores the policy (the centralized baseline
    /// has no placement freedom), and the engine only calls this when
    /// leases are enabled, so the legacy paths never see it.
    fn set_placement(&mut self, placement: PlacementPolicy) {
        let _ = placement;
    }

    /// The lease registrar for `guid`: the ground-truth substrate owner of
    /// the job's DHT key, where the job owner's renewals are recorded.
    /// `None` means the overlay has no live registrar (or the matchmaker
    /// has no overlay at all) and renewals fall back to the reliable
    /// external registry.
    fn lease_registrar(&mut self, nodes: &NodeTable, guid: u64) -> Option<GridNodeId> {
        let _ = (nodes, guid);
        None
    }
}
