//! Lifecycle tracing.
//!
//! An [`Observer`] receives every externally meaningful transition of the
//! Figure-1 lifecycle as it happens in virtual time. Observers power
//! debugging, Gantt-style visualization, and the ordering assertions in the
//! test suite, without the engine paying anything when tracing is off (the
//! default observer is a no-op and the calls inline away).
//!
//! Beyond in-memory collection ([`VecObserver`]) the stream can be exported
//! as JSON Lines ([`JsonlObserver`]) — one event per line with its virtual
//! timestamp in integer nanoseconds, so a fixed seed replays a byte-identical
//! file — and assembled into per-job phase spans
//! ([`SpanAssembler`](crate::SpanAssembler)) that decompose Figure 2's wait
//! time into routing, matchmaking, dispatch, and recovery segments.

use std::io::Write;

use dgrid_resources::JobId;
use dgrid_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::job::OwnerRef;
use crate::node::GridNodeId;

/// One lifecycle transition.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A client submitted (or resubmitted) a job.
    Submitted {
        /// The job.
        job: JobId,
        /// How many resubmissions preceded this one.
        resubmits: u32,
    },
    /// The overlay assigned an owner (Figure 1, step 2).
    OwnerAssigned {
        /// The job.
        job: JobId,
        /// The owner (peer or server).
        owner: OwnerRef,
    },
    /// Matchmaking chose a run node (Figure 1, step 3).
    Matched {
        /// The job.
        job: JobId,
        /// The chosen run node.
        run_node: GridNodeId,
        /// Overlay hops the search cost.
        hops: u32,
    },
    /// The job began executing.
    Started {
        /// The job.
        job: JobId,
        /// Where it runs.
        run_node: GridNodeId,
    },
    /// Execution finished; results return to the client (Figure 1, step 6).
    ///
    /// Emitted when the run node finishes executing; the result transfer
    /// (direct or by-reference through the DHT) is still in flight and
    /// lands at `results_at`, which therefore equals the job's turnaround
    /// instant. Keeping the event at completion time preserves the
    /// nondecreasing emission order; keeping `results_at` in the payload
    /// lets span assembly account for the result-return phase exactly.
    Completed {
        /// The job.
        job: JobId,
        /// When the results reach the client (`>=` the event time).
        results_at: SimTime,
    },
    /// The job permanently failed.
    Failed {
        /// The job.
        job: JobId,
    },
    /// A node departed (failure or graceful leave).
    NodeDown {
        /// The node.
        node: GridNodeId,
        /// Whether the departure was announced.
        graceful: bool,
    },
    /// A node (re)joined.
    NodeUp {
        /// The node.
        node: GridNodeId,
    },
    /// The owner detected a run-node failure and is rematching.
    RunRecovery {
        /// The affected job.
        job: JobId,
    },
    /// The run node replaced a failed owner.
    OwnerRecovery {
        /// The affected job.
        job: JobId,
    },
}

/// Receives lifecycle events in virtual-time order.
pub trait Observer {
    /// Called once per event, in nondecreasing `at` order.
    fn on_event(&mut self, at: SimTime, event: TraceEvent);
}

/// The default no-op observer.
#[derive(Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline]
    fn on_event(&mut self, _at: SimTime, _event: TraceEvent) {}
}

/// Collects every event into a vector (tests, offline analysis).
#[derive(Default)]
pub struct VecObserver {
    /// The recorded `(time, event)` pairs, in emission order.
    pub events: Vec<(SimTime, TraceEvent)>,
}

impl Observer for VecObserver {
    fn on_event(&mut self, at: SimTime, event: TraceEvent) {
        self.events.push((at, event));
    }
}

impl VecObserver {
    /// All events concerning one job, in order.
    pub fn for_job(&self, job: JobId) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|(_, e)| {
                matches!(e,
                    TraceEvent::Submitted { job: j, .. }
                    | TraceEvent::OwnerAssigned { job: j, .. }
                    | TraceEvent::Matched { job: j, .. }
                    | TraceEvent::Started { job: j, .. }
                    | TraceEvent::Completed { job: j, .. }
                    | TraceEvent::Failed { job: j }
                    | TraceEvent::RunRecovery { job: j }
                    | TraceEvent::OwnerRecovery { job: j } if *j == job
                )
            })
            .map(|(_, e)| e)
            .collect()
    }
}

/// One exported line of the JSONL event stream: a virtual timestamp in
/// integer nanoseconds plus the event, exactly as [`JsonlObserver`] writes
/// it and `dgrid report` reads it back.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Virtual emission time, nanoseconds since simulation start.
    pub t_ns: u64,
    /// The lifecycle event.
    pub event: TraceEvent,
}

/// Streams every event as one JSON line (`{"t_ns":...,"event":...}`) with
/// its virtual timestamp. The same seed produces a byte-identical stream,
/// which the CI determinism job asserts with a plain `diff`.
pub struct JsonlObserver<W: Write> {
    sink: W,
}

impl<W: Write> JsonlObserver<W> {
    /// Stream events into `sink`. Wrap files in a `BufWriter` — the
    /// observer writes one line per event.
    pub fn new(sink: W) -> Self {
        JsonlObserver { sink }
    }

    /// Flush and return the sink.
    pub fn into_inner(mut self) -> W {
        self.sink.flush().expect("flush event stream");
        self.sink
    }
}

impl<W: Write> Observer for JsonlObserver<W> {
    fn on_event(&mut self, at: SimTime, event: TraceEvent) {
        let record = EventRecord {
            t_ns: at.as_nanos(),
            event,
        };
        serde_json::to_writer(&mut self.sink, &record).expect("serialize trace event");
        self.sink.write_all(b"\n").expect("write event stream");
    }
}

/// Parse one JSONL line written by [`JsonlObserver`]. Empty lines yield
/// `None`; malformed lines return the serde error.
pub fn parse_event_line(line: &str) -> Result<Option<EventRecord>, serde_json::Error> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    serde_json::from_str(line).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_observer_filters_by_job() {
        let mut o = VecObserver::default();
        o.on_event(
            SimTime::ZERO,
            TraceEvent::Submitted {
                job: JobId(1),
                resubmits: 0,
            },
        );
        o.on_event(
            SimTime::from_secs(1),
            TraceEvent::Submitted {
                job: JobId(2),
                resubmits: 0,
            },
        );
        o.on_event(
            SimTime::from_secs(2),
            TraceEvent::Completed {
                job: JobId(1),
                results_at: SimTime::from_secs(2),
            },
        );
        o.on_event(
            SimTime::from_secs(3),
            TraceEvent::NodeDown {
                node: GridNodeId(0),
                graceful: false,
            },
        );
        assert_eq!(o.for_job(JobId(1)).len(), 2);
        assert_eq!(o.for_job(JobId(2)).len(), 1);
        assert_eq!(o.events.len(), 4);
    }
}
