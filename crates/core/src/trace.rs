//! Lifecycle tracing.
//!
//! An [`Observer`] receives every externally meaningful transition of the
//! Figure-1 lifecycle as it happens in virtual time. Observers power
//! debugging, Gantt-style visualization, and the ordering assertions in the
//! test suite, without the engine paying anything when tracing is off (the
//! default observer is a no-op and the calls inline away).
//!
//! Beyond in-memory collection ([`VecObserver`]) the stream can be exported
//! as JSON Lines ([`JsonlObserver`]) — one event per line with its virtual
//! timestamp in integer nanoseconds, so a fixed seed replays a byte-identical
//! file — or as the compact [`binary`] frame format
//! ([`BinaryObserver`](binary::BinaryObserver), `dgrid events convert`), and
//! assembled into per-job phase spans
//! ([`SpanAssembler`](crate::SpanAssembler)) that decompose Figure 2's wait
//! time into routing, matchmaking, dispatch, and recovery segments.

pub mod binary;

use std::io::Write;

use dgrid_resources::JobId;
use dgrid_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::job::OwnerRef;
use crate::node::GridNodeId;

/// One lifecycle transition.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A client submitted (or resubmitted) a job.
    Submitted {
        /// The job.
        job: JobId,
        /// How many resubmissions preceded this one.
        resubmits: u32,
    },
    /// The overlay assigned an owner (Figure 1, step 2).
    OwnerAssigned {
        /// The job.
        job: JobId,
        /// The owner (peer or server).
        owner: OwnerRef,
    },
    /// Matchmaking chose a run node (Figure 1, step 3).
    Matched {
        /// The job.
        job: JobId,
        /// The chosen run node.
        run_node: GridNodeId,
        /// Overlay hops the search cost.
        hops: u32,
    },
    /// The job began executing.
    Started {
        /// The job.
        job: JobId,
        /// Where it runs.
        run_node: GridNodeId,
    },
    /// Execution finished; results return to the client (Figure 1, step 6).
    ///
    /// Emitted when the run node finishes executing; the result transfer
    /// (direct or by-reference through the DHT) is still in flight and
    /// lands at `results_at`, which therefore equals the job's turnaround
    /// instant. Keeping the event at completion time preserves the
    /// nondecreasing emission order; keeping `results_at` in the payload
    /// lets span assembly account for the result-return phase exactly.
    Completed {
        /// The job.
        job: JobId,
        /// When the results reach the client (`>=` the event time).
        results_at: SimTime,
    },
    /// The job permanently failed.
    Failed {
        /// The job.
        job: JobId,
    },
    /// A node departed (failure or graceful leave).
    NodeDown {
        /// The node.
        node: GridNodeId,
        /// Whether the departure was announced.
        graceful: bool,
    },
    /// A node (re)joined.
    NodeUp {
        /// The node.
        node: GridNodeId,
    },
    /// The owner detected a run-node failure and is rematching.
    RunRecovery {
        /// The affected job.
        job: JobId,
    },
    /// The run node replaced a failed owner.
    OwnerRecovery {
        /// The affected job.
        job: JobId,
    },
    /// The owner's lease on a job ran out (no renewal within ttl + grace).
    LeaseExpired {
        /// The affected job.
        job: JobId,
    },
    /// An expired lease was granted to a freshly placed owner.
    LeaseTransferred {
        /// The affected job.
        job: JobId,
        /// The new owner peer.
        owner: GridNodeId,
    },
}

/// Receives lifecycle events in virtual-time order.
pub trait Observer {
    /// Called once per event, in nondecreasing `at` order.
    fn on_event(&mut self, at: SimTime, event: TraceEvent);

    /// How many stream bytes this observer has written so far, if it is a
    /// stream writer. Lets the engine report `stream_bytes_written` without
    /// owning the observer.
    fn bytes_written(&self) -> Option<u64> {
        None
    }
}

/// The default no-op observer.
#[derive(Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline]
    fn on_event(&mut self, _at: SimTime, _event: TraceEvent) {}
}

/// Collects every event into a vector (tests, offline analysis).
#[derive(Default)]
pub struct VecObserver {
    /// The recorded `(time, event)` pairs, in emission order.
    pub events: Vec<(SimTime, TraceEvent)>,
}

impl Observer for VecObserver {
    fn on_event(&mut self, at: SimTime, event: TraceEvent) {
        self.events.push((at, event));
    }
}

impl VecObserver {
    /// All events concerning one job, in order.
    pub fn for_job(&self, job: JobId) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|(_, e)| e.job() == Some(job))
            .map(|(_, e)| e)
            .collect()
    }
}

/// One exported line of the JSONL event stream: a virtual timestamp in
/// integer nanoseconds plus the event, exactly as [`JsonlObserver`] writes
/// it and `dgrid report` reads it back.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Virtual emission time, nanoseconds since simulation start.
    pub t_ns: u64,
    /// The lifecycle event.
    pub event: TraceEvent,
}

/// Streams every event as one JSON line (`{"t_ns":...,"event":...}`) with
/// its virtual timestamp. The same seed produces a byte-identical stream,
/// which the CI determinism job asserts with a plain `diff`.
///
/// Lines are rendered by [`write_event_line`] into a scratch buffer that is
/// reused across events, so the per-event cost is one formatted line plus
/// one `write_all` — no `Value` tree or fresh `String` per event (the
/// vendored `serde_json::to_writer` builds both).
pub struct JsonlObserver<W: Write> {
    sink: W,
    scratch: String,
    bytes: u64,
}

impl<W: Write> JsonlObserver<W> {
    /// Stream events into `sink`. Wrap files in a `BufWriter` — the
    /// observer writes one line per event.
    pub fn new(sink: W) -> Self {
        JsonlObserver {
            sink,
            scratch: String::with_capacity(96),
            bytes: 0,
        }
    }

    /// Flush and return the sink.
    pub fn into_inner(mut self) -> W {
        self.sink.flush().expect("flush event stream");
        self.sink
    }
}

impl<W: Write> Observer for JsonlObserver<W> {
    fn on_event(&mut self, at: SimTime, event: TraceEvent) {
        self.scratch.clear();
        write_event_line(&mut self.scratch, at.as_nanos(), &event);
        self.sink
            .write_all(self.scratch.as_bytes())
            .expect("write event stream");
        self.bytes += self.scratch.len() as u64;
    }

    fn bytes_written(&self) -> Option<u64> {
        Some(self.bytes)
    }
}

/// Render one event as its JSONL line (including the trailing newline) into
/// `buf`, byte-for-byte what `serde_json::to_string(&EventRecord)` produces
/// (asserted by a test below) but without allocating per event. Every field
/// is an integer, boolean, or bare variant name, so no string escaping is
/// needed.
pub fn write_event_line(buf: &mut String, t_ns: u64, event: &TraceEvent) {
    use std::fmt::Write as _;
    let _ = write!(buf, "{{\"t_ns\":{t_ns},\"event\":");
    let _ = match *event {
        TraceEvent::Submitted { job, resubmits } => write!(
            buf,
            "{{\"Submitted\":{{\"job\":{},\"resubmits\":{}}}}}",
            job.0, resubmits
        ),
        TraceEvent::OwnerAssigned { job, owner } => {
            let _ = write!(buf, "{{\"OwnerAssigned\":{{\"job\":{},\"owner\":", job.0);
            let _ = match owner {
                OwnerRef::Server => write!(buf, "\"Server\""),
                OwnerRef::Peer(p) => write!(buf, "{{\"Peer\":{}}}", p.0),
            };
            write!(buf, "}}}}")
        }
        TraceEvent::Matched {
            job,
            run_node,
            hops,
        } => write!(
            buf,
            "{{\"Matched\":{{\"job\":{},\"run_node\":{},\"hops\":{}}}}}",
            job.0, run_node.0, hops
        ),
        TraceEvent::Started { job, run_node } => write!(
            buf,
            "{{\"Started\":{{\"job\":{},\"run_node\":{}}}}}",
            job.0, run_node.0
        ),
        TraceEvent::Completed { job, results_at } => write!(
            buf,
            "{{\"Completed\":{{\"job\":{},\"results_at\":{}}}}}",
            job.0,
            results_at.as_nanos()
        ),
        TraceEvent::Failed { job } => write!(buf, "{{\"Failed\":{{\"job\":{}}}}}", job.0),
        TraceEvent::NodeDown { node, graceful } => write!(
            buf,
            "{{\"NodeDown\":{{\"node\":{},\"graceful\":{}}}}}",
            node.0, graceful
        ),
        TraceEvent::NodeUp { node } => write!(buf, "{{\"NodeUp\":{{\"node\":{}}}}}", node.0),
        TraceEvent::RunRecovery { job } => {
            write!(buf, "{{\"RunRecovery\":{{\"job\":{}}}}}", job.0)
        }
        TraceEvent::OwnerRecovery { job } => {
            write!(buf, "{{\"OwnerRecovery\":{{\"job\":{}}}}}", job.0)
        }
        TraceEvent::LeaseExpired { job } => {
            write!(buf, "{{\"LeaseExpired\":{{\"job\":{}}}}}", job.0)
        }
        TraceEvent::LeaseTransferred { job, owner } => write!(
            buf,
            "{{\"LeaseTransferred\":{{\"job\":{},\"owner\":{}}}}}",
            job.0, owner.0
        ),
    };
    buf.push_str("}\n");
}

/// Parse one JSONL line written by [`JsonlObserver`]. Empty lines yield
/// `None`; any malformed or truncated line returns a typed
/// [`StreamError`](binary::StreamError) — never a panic, which the fuzz
/// proptests assert over arbitrary input.
pub fn parse_jsonl_line(line: &str) -> Result<Option<EventRecord>, binary::StreamError> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    serde_json::from_str(line)
        .map(Some)
        .map_err(|e| binary::StreamError::Json { msg: e.to_string() })
}

/// The twelve lifecycle event shapes, as a dense index for per-kind
/// counters (windowed rates, watch dashboards).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// [`TraceEvent::Submitted`].
    Submitted,
    /// [`TraceEvent::OwnerAssigned`].
    OwnerAssigned,
    /// [`TraceEvent::Matched`].
    Matched,
    /// [`TraceEvent::Started`].
    Started,
    /// [`TraceEvent::Completed`].
    Completed,
    /// [`TraceEvent::Failed`].
    Failed,
    /// [`TraceEvent::NodeDown`].
    NodeDown,
    /// [`TraceEvent::NodeUp`].
    NodeUp,
    /// [`TraceEvent::RunRecovery`].
    RunRecovery,
    /// [`TraceEvent::OwnerRecovery`].
    OwnerRecovery,
    /// [`TraceEvent::LeaseExpired`].
    LeaseExpired,
    /// [`TraceEvent::LeaseTransferred`].
    LeaseTransferred,
}

impl EventKind {
    /// Every kind, in [`EventKind::index`] order.
    pub const ALL: [EventKind; 12] = [
        EventKind::Submitted,
        EventKind::OwnerAssigned,
        EventKind::Matched,
        EventKind::Started,
        EventKind::Completed,
        EventKind::Failed,
        EventKind::NodeDown,
        EventKind::NodeUp,
        EventKind::RunRecovery,
        EventKind::OwnerRecovery,
        EventKind::LeaseExpired,
        EventKind::LeaseTransferred,
    ];

    /// Dense index into per-kind counter arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Display label (matches the JSONL variant spelling).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Submitted => "Submitted",
            EventKind::OwnerAssigned => "OwnerAssigned",
            EventKind::Matched => "Matched",
            EventKind::Started => "Started",
            EventKind::Completed => "Completed",
            EventKind::Failed => "Failed",
            EventKind::NodeDown => "NodeDown",
            EventKind::NodeUp => "NodeUp",
            EventKind::RunRecovery => "RunRecovery",
            EventKind::OwnerRecovery => "OwnerRecovery",
            EventKind::LeaseExpired => "LeaseExpired",
            EventKind::LeaseTransferred => "LeaseTransferred",
        }
    }
}

impl TraceEvent {
    /// This event's [`EventKind`].
    pub fn kind(&self) -> EventKind {
        match self {
            TraceEvent::Submitted { .. } => EventKind::Submitted,
            TraceEvent::OwnerAssigned { .. } => EventKind::OwnerAssigned,
            TraceEvent::Matched { .. } => EventKind::Matched,
            TraceEvent::Started { .. } => EventKind::Started,
            TraceEvent::Completed { .. } => EventKind::Completed,
            TraceEvent::Failed { .. } => EventKind::Failed,
            TraceEvent::NodeDown { .. } => EventKind::NodeDown,
            TraceEvent::NodeUp { .. } => EventKind::NodeUp,
            TraceEvent::RunRecovery { .. } => EventKind::RunRecovery,
            TraceEvent::OwnerRecovery { .. } => EventKind::OwnerRecovery,
            TraceEvent::LeaseExpired { .. } => EventKind::LeaseExpired,
            TraceEvent::LeaseTransferred { .. } => EventKind::LeaseTransferred,
        }
    }

    /// The job this event concerns, if it is job-scoped.
    pub fn job(&self) -> Option<JobId> {
        match *self {
            TraceEvent::Submitted { job, .. }
            | TraceEvent::OwnerAssigned { job, .. }
            | TraceEvent::Matched { job, .. }
            | TraceEvent::Started { job, .. }
            | TraceEvent::Completed { job, .. }
            | TraceEvent::Failed { job }
            | TraceEvent::RunRecovery { job }
            | TraceEvent::OwnerRecovery { job }
            | TraceEvent::LeaseExpired { job }
            | TraceEvent::LeaseTransferred { job, .. } => Some(job),
            TraceEvent::NodeDown { .. } | TraceEvent::NodeUp { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_observer_filters_by_job() {
        let mut o = VecObserver::default();
        o.on_event(
            SimTime::ZERO,
            TraceEvent::Submitted {
                job: JobId(1),
                resubmits: 0,
            },
        );
        o.on_event(
            SimTime::from_secs(1),
            TraceEvent::Submitted {
                job: JobId(2),
                resubmits: 0,
            },
        );
        o.on_event(
            SimTime::from_secs(2),
            TraceEvent::Completed {
                job: JobId(1),
                results_at: SimTime::from_secs(2),
            },
        );
        o.on_event(
            SimTime::from_secs(3),
            TraceEvent::NodeDown {
                node: GridNodeId(0),
                graceful: false,
            },
        );
        assert_eq!(o.for_job(JobId(1)).len(), 2);
        assert_eq!(o.for_job(JobId(2)).len(), 1);
        assert_eq!(o.events.len(), 4);
    }

    /// The manual line renderer must stay byte-for-byte compatible with the
    /// serde derive output (`dgrid report` and the repro artifacts parse
    /// lines back through serde). One case per variant, covering both
    /// `OwnerRef` shapes and both booleans.
    #[test]
    fn manual_serializer_matches_serde_for_every_variant() {
        let cases: Vec<(u64, TraceEvent)> = vec![
            (
                0,
                TraceEvent::Submitted {
                    job: JobId(1),
                    resubmits: 0,
                },
            ),
            (
                17,
                TraceEvent::Submitted {
                    job: JobId(u64::MAX),
                    resubmits: 3,
                },
            ),
            (
                1_000_000_000,
                TraceEvent::OwnerAssigned {
                    job: JobId(2),
                    owner: OwnerRef::Server,
                },
            ),
            (
                2_500_000_000,
                TraceEvent::OwnerAssigned {
                    job: JobId(3),
                    owner: OwnerRef::Peer(GridNodeId(42)),
                },
            ),
            (
                3,
                TraceEvent::Matched {
                    job: JobId(4),
                    run_node: GridNodeId(7),
                    hops: 5,
                },
            ),
            (
                4,
                TraceEvent::Started {
                    job: JobId(5),
                    run_node: GridNodeId(0),
                },
            ),
            (
                5,
                TraceEvent::Completed {
                    job: JobId(6),
                    results_at: SimTime::from_secs(9),
                },
            ),
            (6, TraceEvent::Failed { job: JobId(7) }),
            (
                7,
                TraceEvent::NodeDown {
                    node: GridNodeId(8),
                    graceful: true,
                },
            ),
            (
                8,
                TraceEvent::NodeDown {
                    node: GridNodeId(9),
                    graceful: false,
                },
            ),
            (
                9,
                TraceEvent::NodeUp {
                    node: GridNodeId(10),
                },
            ),
            (10, TraceEvent::RunRecovery { job: JobId(11) }),
            (11, TraceEvent::OwnerRecovery { job: JobId(12) }),
            (12, TraceEvent::LeaseExpired { job: JobId(13) }),
            (
                13,
                TraceEvent::LeaseTransferred {
                    job: JobId(14),
                    owner: GridNodeId(15),
                },
            ),
        ];
        let mut buf = String::new();
        for (t_ns, event) in cases {
            buf.clear();
            write_event_line(&mut buf, t_ns, &event);
            let via_serde =
                serde_json::to_string(&EventRecord { t_ns, event }).expect("serde serializes");
            assert_eq!(buf, format!("{via_serde}\n"), "mismatch for {event:?}");
            // And it must round-trip through the line parser.
            let parsed = parse_jsonl_line(&buf).expect("parses").expect("non-empty");
            assert_eq!(parsed, EventRecord { t_ns, event });
        }
    }
}
