//! Generational index arenas for the simulation kernel's hot state.
//!
//! A million-node replication cannot afford hash lookups and pointer-chased
//! maps on its per-event paths, so node and job records live in dense,
//! index-addressed arenas. An [`ArenaIdx`] is a `(slot, generation)` pair:
//! slots are recycled through a free-list when a record is removed, and the
//! slot's generation is bumped on every removal, so a stale index from a
//! previous occupant can never silently alias the new one — `get` returns
//! `None` instead. That is the same staleness discipline job epochs give
//! the recovery protocol, applied to memory.
//!
//! Iteration visits occupied slots in ascending slot order, which is a
//! deterministic function of the insertion/removal history — never of hash
//! state — so arena walks are safe on byte-identity-sensitive paths.

use std::marker::PhantomData;

/// A generational handle into an [`Arena`].
///
/// `I` is a zero-sized tag type so node and job indices are distinct types
/// (`NodeIdx` vs `JobIdx`) and cannot be swapped by accident.
pub struct ArenaIdx<I> {
    slot: u32,
    generation: u32,
    _tag: PhantomData<I>,
}

// Manual impls: `derive` would bound them on `I`, which is only a tag.
impl<I> Clone for ArenaIdx<I> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<I> Copy for ArenaIdx<I> {}
impl<I> PartialEq for ArenaIdx<I> {
    fn eq(&self, other: &Self) -> bool {
        (self.slot, self.generation) == (other.slot, other.generation)
    }
}
impl<I> Eq for ArenaIdx<I> {}
impl<I> std::hash::Hash for ArenaIdx<I> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.slot, self.generation).hash(state);
    }
}
impl<I> std::fmt::Debug for ArenaIdx<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "idx{}g{}", self.slot, self.generation)
    }
}

impl<I> ArenaIdx<I> {
    /// The dense slot number (stable for the lifetime of the occupant).
    pub fn slot(self) -> u32 {
        self.slot
    }

    /// The slot's generation when this handle was issued.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// Tag type for node indices.
pub enum NodeTag {}
/// Tag type for job indices.
pub enum JobTag {}

/// Generational index of a node record.
pub type NodeIdx = ArenaIdx<NodeTag>;
/// Generational index of a job record.
pub type JobIdx = ArenaIdx<JobTag>;

struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A dense generational arena: O(1) insert/remove/get, free-list slot
/// reuse, and deterministic ascending-slot iteration.
pub struct Arena<T, I = ()> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
    _tag: PhantomData<I>,
}

impl<T, I> Default for Arena<T, I> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, I> Arena<T, I> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            _tag: PhantomData,
        }
    }

    /// An empty arena with room for `cap` records before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
            _tag: PhantomData,
        }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no records are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever allocated (live + free).
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }

    /// Insert `value`, reusing the most recently freed slot if one exists.
    pub fn insert(&mut self, value: T) -> ArenaIdx<I> {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.value.is_none(), "free-list handed out a live slot");
            s.value = Some(value);
            return ArenaIdx {
                slot,
                generation: s.generation,
                _tag: PhantomData,
            };
        }
        let slot = u32::try_from(self.slots.len()).expect("arena capped at 2^32 slots");
        self.slots.push(Slot {
            generation: 0,
            value: Some(value),
        });
        ArenaIdx {
            slot,
            generation: 0,
            _tag: PhantomData,
        }
    }

    /// Remove the record at `idx`, bumping the slot's generation and
    /// returning the value. A stale (already removed) index returns `None`
    /// and changes nothing.
    pub fn remove(&mut self, idx: ArenaIdx<I>) -> Option<T> {
        let s = self.slots.get_mut(idx.slot as usize)?;
        if s.generation != idx.generation {
            return None;
        }
        let value = s.value.take()?;
        // The bump is what invalidates every outstanding handle to the old
        // occupant; wrap-around after 2^32 churns of one slot is accepted.
        s.generation = s.generation.wrapping_add(1);
        self.free.push(idx.slot);
        self.len -= 1;
        Some(value)
    }

    /// True iff `idx` refers to a live record of the same generation.
    pub fn contains(&self, idx: ArenaIdx<I>) -> bool {
        self.get(idx).is_some()
    }

    /// Shared access; `None` if the index is stale or the slot is free.
    pub fn get(&self, idx: ArenaIdx<I>) -> Option<&T> {
        let s = self.slots.get(idx.slot as usize)?;
        if s.generation != idx.generation {
            return None;
        }
        s.value.as_ref()
    }

    /// Mutable access; `None` if the index is stale or the slot is free.
    pub fn get_mut(&mut self, idx: ArenaIdx<I>) -> Option<&mut T> {
        let s = self.slots.get_mut(idx.slot as usize)?;
        if s.generation != idx.generation {
            return None;
        }
        s.value.as_mut()
    }

    /// Shared access by raw slot number, ignoring generations — for dense
    /// side tables that shadow the arena. `None` on free slots.
    pub fn get_slot(&self, slot: u32) -> Option<&T> {
        self.slots.get(slot as usize)?.value.as_ref()
    }

    /// Mutable access by raw slot number, ignoring generations.
    pub fn get_slot_mut(&mut self, slot: u32) -> Option<&mut T> {
        self.slots.get_mut(slot as usize)?.value.as_mut()
    }

    /// Live records in ascending slot order — deterministic, independent of
    /// any hash state.
    pub fn iter(&self) -> impl Iterator<Item = (ArenaIdx<I>, &T)> {
        self.slots.iter().enumerate().filter_map(|(slot, s)| {
            s.value.as_ref().map(|v| {
                (
                    ArenaIdx {
                        slot: slot as u32,
                        generation: s.generation,
                        _tag: PhantomData,
                    },
                    v,
                )
            })
        })
    }

    /// Mutable variant of [`Arena::iter`], same deterministic order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ArenaIdx<I>, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(slot, s)| {
            let generation = s.generation;
            s.value.as_mut().map(move |v| {
                (
                    ArenaIdx {
                        slot: slot as u32,
                        generation,
                        _tag: PhantomData,
                    },
                    v,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestArena = Arena<&'static str, NodeTag>;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut a = TestArena::new();
        let i = a.insert("a");
        let j = a.insert("b");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(i), Some(&"a"));
        assert_eq!(a.get(j), Some(&"b"));
        assert_eq!(a.remove(i), Some("a"));
        assert_eq!(a.get(i), None);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn stale_index_is_rejected_after_slot_reuse() {
        let mut a = TestArena::new();
        let i = a.insert("old");
        assert_eq!(a.remove(i), Some("old"));
        let k = a.insert("new");
        // Same slot, new generation: the stale handle must not alias.
        assert_eq!(k.slot(), i.slot());
        assert_ne!(k.generation(), i.generation());
        assert_eq!(a.get(i), None);
        assert_eq!(a.remove(i), None);
        assert_eq!(a.get(k), Some(&"new"));
    }

    #[test]
    fn iteration_is_ascending_slot_order() {
        let mut a = TestArena::new();
        let i0 = a.insert("x");
        let _i1 = a.insert("y");
        let _i2 = a.insert("z");
        a.remove(i0);
        a.insert("w"); // reuses slot 0
        let order: Vec<_> = a.iter().map(|(idx, v)| (idx.slot(), *v)).collect();
        assert_eq!(order, vec![(0, "w"), (1, "y"), (2, "z")]);
    }
}
