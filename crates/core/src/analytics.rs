//! Streaming analytics over the live event stream.
//!
//! [`StreamAnalytics`] is an [`Observer`] that folds every lifecycle event
//! into fixed-footprint online state *while the run executes* — the
//! consumer side of the proto/live-query split: the wire format
//! ([`trace::binary`](crate::trace::binary)) carries events, this module
//! turns them into answers. It keeps
//!
//! * per-kind event totals and per-window counters
//!   ([`Windowed`](dgrid_sim::telemetry::sketch::Windowed)) for live rates,
//! * inflight / executing job gauges,
//! * wait and turnaround [`QuantileSketch`]es whose p50/p95/p99 match the
//!   post-hoc percentiles in `SimReport` up to one log₂ bucket (asserted by
//!   the stream e2e test and the `T-stream` bench).
//!
//! The same type powers `dgrid watch` (fed from a decoded stream, live or
//! recorded) and can sit directly on an engine as its observer. All state
//! is integer-deterministic; feeding the same event sequence always yields
//! the same snapshot.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use dgrid_sim::telemetry::sketch::{QuantileSketch, WindowRow, Windowed};
use dgrid_sim::{SimDuration, SimTime};

use crate::trace::{EventKind, EventRecord, Observer, TraceEvent};

/// Counters per window: one per [`EventKind`].
pub const WINDOW_COUNTER_ARITY: usize = EventKind::ALL.len();

#[derive(Default)]
struct JobTrack {
    /// First `Submitted` time, if the stream contained it (a tailed stream
    /// may start mid-lifecycle).
    first_submit_ns: Option<u64>,
    /// A `Started` was seen (wait is sampled only once per job).
    started: bool,
    /// Currently executing on a run node.
    executing: bool,
    /// Reached `Completed` or `Failed`.
    done: bool,
}

/// Point summary of one quantile sketch, for display.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SketchStats {
    /// Number of samples.
    pub count: u64,
    /// p50 point estimate (upper bucket edge, clamped to the exact
    /// maximum), nanoseconds.
    pub p50_ns: u64,
    /// p95 point estimate, nanoseconds.
    pub p95_ns: u64,
    /// p99 point estimate, nanoseconds.
    pub p99_ns: u64,
    /// Exact maximum, nanoseconds.
    pub max_ns: u64,
    /// Exact mean (the sum is tracked exactly), nanoseconds.
    pub mean_ns: f64,
}

fn stats_of(s: &QuantileSketch) -> Option<SketchStats> {
    // The sketch's point estimate is the bucket's upper edge; the exact
    // maximum is a tighter bound whenever the top sample shares the bucket.
    let max = s.max();
    Some(SketchStats {
        count: s.count(),
        p50_ns: s.quantile(0.5)?.min(max),
        p95_ns: s.quantile(0.95)?.min(max),
        p99_ns: s.quantile(0.99)?.min(max),
        max_ns: max,
        mean_ns: s.mean(),
    })
}

/// One refresh-worth of analytics state, ready to render.
#[derive(Clone, Debug)]
pub struct AnalyticsSnapshot {
    /// Total events folded in.
    pub events_total: u64,
    /// Cumulative count per [`EventKind::index`].
    pub per_kind: [u64; WINDOW_COUNTER_ARITY],
    /// Jobs seen but not yet completed/failed.
    pub inflight: u64,
    /// Jobs currently executing on a run node.
    pub executing: u64,
    /// Wait-time sketch summary (first submit → first start).
    pub wait: Option<SketchStats>,
    /// Turnaround sketch summary (first submit → results at client).
    pub turnaround: Option<SketchStats>,
    /// The window length, nanoseconds.
    pub window_ns: u64,
    /// Recently closed windows, oldest first.
    pub recent: Vec<WindowRow>,
    /// Start of the still-open window, nanoseconds.
    pub current_start_ns: u64,
    /// Per-kind counts of the still-open window.
    pub current: Vec<u64>,
    /// Virtual time of the newest event folded in, nanoseconds.
    pub last_t_ns: u64,
}

/// Online analytics over a lifecycle event stream (see module docs).
pub struct StreamAnalytics {
    window: Windowed,
    wait: QuantileSketch,
    turnaround: QuantileSketch,
    jobs: HashMap<u64, JobTrack>,
    per_kind: [u64; WINDOW_COUNTER_ARITY],
    events_total: u64,
    inflight: u64,
    executing: u64,
    last_t_ns: u64,
}

impl StreamAnalytics {
    /// Analytics with per-kind counters over `window`-long windows, keeping
    /// the last `history` closed windows for rate display.
    pub fn new(window: SimDuration, history: usize) -> Self {
        StreamAnalytics {
            window: Windowed::new(window, WINDOW_COUNTER_ARITY, history),
            wait: QuantileSketch::new(),
            turnaround: QuantileSketch::new(),
            jobs: HashMap::new(),
            per_kind: [0; WINDOW_COUNTER_ARITY],
            events_total: 0,
            inflight: 0,
            executing: 0,
            last_t_ns: 0,
        }
    }

    fn track<'a>(
        jobs: &'a mut HashMap<u64, JobTrack>,
        inflight: &mut u64,
        job: u64,
    ) -> &'a mut JobTrack {
        match jobs.entry(job) {
            Entry::Occupied(o) => o.into_mut(),
            Entry::Vacant(v) => {
                *inflight += 1;
                v.insert(JobTrack::default())
            }
        }
    }

    /// Fold one event in. Timestamps normally arrive in nondecreasing
    /// order; a backwards jump (a concatenated multi-replication stream) is
    /// clamped for windowing so rates stay monotone in virtual time.
    pub fn feed(&mut self, t_ns: u64, event: &TraceEvent) {
        let kind = event.kind();
        self.per_kind[kind.index()] += 1;
        self.events_total += 1;
        let t = t_ns.max(self.last_t_ns);
        self.last_t_ns = t;
        self.window
            .bump(SimTime::ZERO + SimDuration::from_nanos(t), kind.index());

        match *event {
            TraceEvent::Submitted { job, .. } => {
                let tr = Self::track(&mut self.jobs, &mut self.inflight, job.0);
                if tr.done {
                    // A terminal job submitting again can only be the same
                    // id in a later run of a concatenated multi-replication
                    // stream — start a fresh lifecycle so the sketches
                    // sample every replication, not just the first.
                    *tr = JobTrack::default();
                    self.inflight += 1;
                }
                if tr.first_submit_ns.is_none() {
                    tr.first_submit_ns = Some(t_ns);
                }
            }
            TraceEvent::Started { job, .. } => {
                let tr = Self::track(&mut self.jobs, &mut self.inflight, job.0);
                if !tr.done && !tr.executing {
                    tr.executing = true;
                    self.executing += 1;
                }
                if !tr.started {
                    tr.started = true;
                    if let Some(fs) = tr.first_submit_ns {
                        self.wait.record(t_ns.saturating_sub(fs));
                    }
                }
            }
            TraceEvent::RunRecovery { job } => {
                // The run node died; the job is back in matchmaking.
                let tr = Self::track(&mut self.jobs, &mut self.inflight, job.0);
                if tr.executing {
                    tr.executing = false;
                    self.executing -= 1;
                }
            }
            TraceEvent::Completed { job, results_at } => {
                let tr = Self::track(&mut self.jobs, &mut self.inflight, job.0);
                if !tr.done {
                    tr.done = true;
                    self.inflight -= 1;
                    if tr.executing {
                        tr.executing = false;
                        self.executing -= 1;
                    }
                    if let Some(fs) = tr.first_submit_ns {
                        self.turnaround
                            .record(results_at.as_nanos().saturating_sub(fs));
                    }
                }
            }
            TraceEvent::Failed { job } => {
                let tr = Self::track(&mut self.jobs, &mut self.inflight, job.0);
                if !tr.done {
                    tr.done = true;
                    self.inflight -= 1;
                    if tr.executing {
                        tr.executing = false;
                        self.executing -= 1;
                    }
                }
            }
            // The remaining kinds only contribute to the counters above.
            TraceEvent::OwnerAssigned { .. }
            | TraceEvent::Matched { .. }
            | TraceEvent::NodeDown { .. }
            | TraceEvent::NodeUp { .. }
            | TraceEvent::OwnerRecovery { .. }
            | TraceEvent::LeaseExpired { .. }
            | TraceEvent::LeaseTransferred { .. } => {}
        }
    }

    /// Fold a decoded record in (the `dgrid watch` path).
    pub fn feed_record(&mut self, rec: &EventRecord) {
        self.feed(rec.t_ns, &rec.event);
    }

    /// The wait-time sketch (first submit → first start), for merging or
    /// direct quantile queries.
    pub fn wait_sketch(&self) -> &QuantileSketch {
        &self.wait
    }

    /// The turnaround sketch (first submit → results at client).
    pub fn turnaround_sketch(&self) -> &QuantileSketch {
        &self.turnaround
    }

    /// Snapshot the current state for rendering.
    pub fn snapshot(&self) -> AnalyticsSnapshot {
        let (current_start, current) = self.window.current();
        AnalyticsSnapshot {
            events_total: self.events_total,
            per_kind: self.per_kind,
            inflight: self.inflight,
            executing: self.executing,
            wait: stats_of(&self.wait),
            turnaround: stats_of(&self.turnaround),
            window_ns: self.window.window().as_nanos(),
            recent: self.window.rows().cloned().collect(),
            current_start_ns: current_start.as_nanos(),
            current: current.to_vec(),
            last_t_ns: self.last_t_ns,
        }
    }
}

impl Observer for StreamAnalytics {
    fn on_event(&mut self, at: SimTime, event: TraceEvent) {
        self.feed(at.as_nanos(), &event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::GridNodeId;
    use dgrid_resources::JobId;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn gauges_and_sketches_follow_the_lifecycle() {
        let mut a = StreamAnalytics::new(SimDuration::from_secs(10), 8);
        let job = JobId(1);
        a.feed(
            secs(1).as_nanos(),
            &TraceEvent::Submitted { job, resubmits: 0 },
        );
        assert_eq!(a.snapshot().inflight, 1);
        a.feed(
            secs(5).as_nanos(),
            &TraceEvent::Started {
                job,
                run_node: GridNodeId(2),
            },
        );
        let snap = a.snapshot();
        assert_eq!(snap.executing, 1);
        // Wait = 4 s, inside the [2^32, 2^33) ns bucket.
        let wait = snap.wait.unwrap();
        assert_eq!(wait.count, 1);
        assert_eq!(wait.max_ns, 4_000_000_000);
        a.feed(
            secs(9).as_nanos(),
            &TraceEvent::Completed {
                job,
                results_at: secs(9),
            },
        );
        let snap = a.snapshot();
        assert_eq!((snap.inflight, snap.executing), (0, 0));
        let ta = snap.turnaround.unwrap();
        assert_eq!(ta.max_ns, 8_000_000_000);
        assert_eq!(snap.events_total, 3);
        assert_eq!(snap.per_kind[EventKind::Completed.index()], 1);
    }

    #[test]
    fn run_recovery_releases_the_executing_gauge() {
        let mut a = StreamAnalytics::new(SimDuration::from_secs(10), 8);
        let job = JobId(3);
        a.feed(0, &TraceEvent::Submitted { job, resubmits: 0 });
        a.feed(
            1,
            &TraceEvent::Started {
                job,
                run_node: GridNodeId(1),
            },
        );
        a.feed(2, &TraceEvent::RunRecovery { job });
        assert_eq!(a.snapshot().executing, 0);
        // A second Started resumes execution but records no second wait.
        a.feed(
            3,
            &TraceEvent::Started {
                job,
                run_node: GridNodeId(4),
            },
        );
        let snap = a.snapshot();
        assert_eq!(snap.executing, 1);
        assert_eq!(snap.wait.unwrap().count, 1);
    }

    #[test]
    fn windows_count_per_kind() {
        let mut a = StreamAnalytics::new(SimDuration::from_secs(1), 4);
        for i in 0..5u64 {
            a.feed(
                SimTime::from_millis(100 * i).as_nanos(),
                &TraceEvent::Submitted {
                    job: JobId(i),
                    resubmits: 0,
                },
            );
        }
        a.feed(
            secs(2).as_nanos(),
            &TraceEvent::NodeDown {
                node: GridNodeId(0),
                graceful: false,
            },
        );
        let snap = a.snapshot();
        assert_eq!(snap.recent.len(), 2);
        assert_eq!(snap.recent[0].counts[EventKind::Submitted.index()], 5);
        assert_eq!(snap.current[EventKind::NodeDown.index()], 1);
    }

    #[test]
    fn concatenated_replications_sample_every_lifecycle() {
        // Job ids repeat across the runs of a concatenated stream; each
        // re-submission after a terminal state is a fresh lifecycle.
        let mut a = StreamAnalytics::new(SimDuration::from_secs(10), 8);
        let job = JobId(1);
        for run in 0..3u64 {
            a.feed(
                secs(run * 100).as_nanos(),
                &TraceEvent::Submitted { job, resubmits: 0 },
            );
            a.feed(
                secs(run * 100 + 4).as_nanos(),
                &TraceEvent::Started {
                    job,
                    run_node: GridNodeId(2),
                },
            );
            a.feed(
                secs(run * 100 + 9).as_nanos(),
                &TraceEvent::Completed {
                    job,
                    results_at: secs(run * 100 + 9),
                },
            );
        }
        let snap = a.snapshot();
        assert_eq!((snap.inflight, snap.executing), (0, 0));
        assert_eq!(snap.wait.unwrap().count, 3);
        assert_eq!(snap.turnaround.unwrap().count, 3);
    }

    #[test]
    fn mid_stream_tail_without_submit_records_no_wait() {
        let mut a = StreamAnalytics::new(SimDuration::from_secs(10), 4);
        a.feed(
            5,
            &TraceEvent::Started {
                job: JobId(9),
                run_node: GridNodeId(1),
            },
        );
        let snap = a.snapshot();
        assert_eq!(snap.inflight, 1);
        assert!(snap.wait.is_none());
    }
}
