//! The centralized baseline matchmaker.
//!
//! "To see how well the workload could be balanced, we also show results for
//! a centralized scheme that uses knowledge of the status of all nodes and
//! jobs. Such a scheme would be very expensive to implement in a
//! decentralized P2P system, but serves as a target for achieving the best
//! possible load balance from an online matchmaking algorithm."
//! (Section 3.3.)
//!
//! The owner role is played by the reliable central server (which, per the
//! client-server model of Section 1, persists job state and never fails);
//! matchmaking reads fresh global state and picks the capable node with the
//! least committed work. Matchmaking cost is zero overlay hops — that is
//! precisely the advantage being bought with the single point of failure.

use dgrid_resources::JobProfile;
use dgrid_sim::rng::SimRng;
use rand::Rng;

use crate::job::OwnerRef;
use crate::matchmaker::{MatchOutcome, Matchmaker};
use crate::node::{GridNodeId, NodeTable};

/// Omniscient online scheduler used as the paper's load-balance target.
#[derive(Debug, Default)]
pub struct CentralizedMatchmaker {
    /// Virtual clock mirror so pending-work estimates age correctly; the
    /// engine ticks this via [`Matchmaker::tick`] indirectly (estimates use
    /// queue *lengths* plus runtimes, which do not need the exact instant).
    _private: (),
}

impl CentralizedMatchmaker {
    /// Create the baseline scheduler.
    pub fn new() -> Self {
        CentralizedMatchmaker::default()
    }
}

impl Matchmaker for CentralizedMatchmaker {
    fn name(&self) -> &'static str {
        "central"
    }

    fn on_join(&mut self, _nodes: &NodeTable, _node: GridNodeId, _rng: &mut SimRng) {}

    fn on_leave(&mut self, _nodes: &NodeTable, _node: GridNodeId, _graceful: bool) {}

    fn assign_owner(
        &mut self,
        _nodes: &NodeTable,
        _job: &JobProfile,
        _guid: u64,
        _injection: GridNodeId,
        _rng: &mut SimRng,
    ) -> Option<(OwnerRef, u32)> {
        Some((OwnerRef::Server, 0))
    }

    fn find_run_node(
        &mut self,
        nodes: &NodeTable,
        _owner: OwnerRef,
        job: &JobProfile,
        rng: &mut SimRng,
    ) -> MatchOutcome {
        // Least committed work among capable nodes; random tie-break so
        // identical idle nodes share load evenly.
        let mut best: Option<(f64, GridNodeId)> = None;
        let mut ties = 0u32;
        for id in nodes.alive_ids() {
            let n = nodes.get(id);
            if !job.requirements.satisfied_by(&n.profile.capabilities) {
                continue;
            }
            let work = pending_estimate(n);
            match best {
                None => {
                    best = Some((work, id));
                    ties = 1;
                }
                Some((b, _)) if work < b => {
                    best = Some((work, id));
                    ties = 1;
                }
                Some((b, _)) if work == b => {
                    ties += 1;
                    if rng.gen_range(0..ties) == 0 {
                        best = Some((work, id));
                    }
                }
                _ => {}
            }
        }
        MatchOutcome {
            run_node: best.map(|(_, id)| id),
            hops: 0,
        }
    }

    fn reassign_owner(
        &mut self,
        _nodes: &NodeTable,
        _job: &JobProfile,
        _guid: u64,
        _rng: &mut SimRng,
    ) -> Option<(OwnerRef, u32)> {
        Some((OwnerRef::Server, 0))
    }

    fn tick(&mut self, _nodes: &NodeTable) {}

    fn resolve_guid(&mut self, _nodes: &NodeTable, _guid: u64, _rng: &mut SimRng) -> Option<u32> {
        Some(0) // the server is the directory
    }
}

/// Committed-work estimate independent of the current instant: queued
/// runtimes plus the running job's full runtime (a slight overestimate of
/// the remainder, applied identically to every node, so the ordering is
/// fair).
fn pending_estimate(n: &crate::node::GridNode) -> f64 {
    n.committed_work_secs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeTable;
    use dgrid_resources::{
        Capabilities, ClientId, JobId, JobProfile, JobRequirements, NodeProfile, OsType,
        ResourceKind,
    };
    use dgrid_sim::rng::rng_for;

    fn table() -> NodeTable {
        NodeTable::new(vec![
            NodeProfile::new(Capabilities::new(1.0, 1.0, 10.0, OsType::Linux)),
            NodeProfile::new(Capabilities::new(2.0, 4.0, 100.0, OsType::Linux)),
            NodeProfile::new(Capabilities::new(3.0, 8.0, 400.0, OsType::Windows)),
        ])
    }

    fn job(req: JobRequirements) -> JobProfile {
        JobProfile::new(JobId(1), ClientId(0), req, 10.0)
    }

    #[test]
    fn owner_is_always_the_server() {
        let mut mm = CentralizedMatchmaker::new();
        let nodes = table();
        let mut rng = rng_for(1, 1);
        let p = job(JobRequirements::unconstrained());
        let (owner, hops) = mm
            .assign_owner(&nodes, &p, 42, GridNodeId(0), &mut rng)
            .unwrap();
        assert_eq!(owner, OwnerRef::Server);
        assert_eq!(hops, 0);
        assert_eq!(
            mm.reassign_owner(&nodes, &p, 42, &mut rng),
            Some((OwnerRef::Server, 0))
        );
    }

    #[test]
    fn picks_only_capable_nodes() {
        let mut mm = CentralizedMatchmaker::new();
        let nodes = table();
        let mut rng = rng_for(2, 1);
        let p = job(JobRequirements::unconstrained().with_min(ResourceKind::Memory, 5.0));
        let out = mm.find_run_node(&nodes, OwnerRef::Server, &p, &mut rng);
        assert_eq!(
            out.run_node,
            Some(GridNodeId(2)),
            "only the 8 GiB node qualifies"
        );
        assert_eq!(out.hops, 0);
    }

    #[test]
    fn no_capable_node_means_no_match() {
        let mut mm = CentralizedMatchmaker::new();
        let nodes = table();
        let mut rng = rng_for(3, 1);
        let p = job(JobRequirements::unconstrained().with_min(ResourceKind::CpuSpeed, 100.0));
        let out = mm.find_run_node(&nodes, OwnerRef::Server, &p, &mut rng);
        assert_eq!(out.run_node, None);
    }

    #[test]
    fn dead_nodes_are_skipped() {
        let mut mm = CentralizedMatchmaker::new();
        let mut nodes = table();
        nodes.mark_failed(GridNodeId(2));
        let mut rng = rng_for(4, 1);
        let p = job(JobRequirements::unconstrained().with_min(ResourceKind::Memory, 5.0));
        let out = mm.find_run_node(&nodes, OwnerRef::Server, &p, &mut rng);
        assert_eq!(out.run_node, None, "the only capable node is down");
    }

    #[test]
    fn idle_ties_are_spread_randomly() {
        let mut mm = CentralizedMatchmaker::new();
        let nodes = table();
        let mut rng = rng_for(5, 1);
        let p = job(JobRequirements::unconstrained());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(
                mm.find_run_node(&nodes, OwnerRef::Server, &p, &mut rng)
                    .run_node,
            );
        }
        assert!(
            seen.len() >= 2,
            "tie-breaking must not always pick the same node"
        );
    }

    #[test]
    fn guid_resolution_is_free() {
        let mut mm = CentralizedMatchmaker::new();
        let nodes = table();
        let mut rng = rng_for(6, 1);
        assert_eq!(mm.resolve_guid(&nodes, 7, &mut rng), Some(0));
    }
}
