//! The discrete-event grid engine.
//!
//! Drives the six-step lifecycle of Figure 1 over any [`Matchmaker`], with
//! the owner/run-node replication and recovery protocol of Section 2:
//!
//! * **run-node failure** → the owner misses heartbeats, detects after
//!   `heartbeat_secs × heartbeat_misses`, and re-runs matchmaking;
//! * **owner failure** → the run node misses heartbeat acknowledgements,
//!   detects on the same schedule, and installs a new owner through the
//!   overlay (`reassign_owner`);
//! * **both fail** before recovery completes → the client resubmits after
//!   `client_resubmit_secs`.
//!
//! Every in-flight message carries the job's *epoch*; any reassignment bumps
//! the epoch, so events from a superseded assignment are ignored when they
//! arrive — the simulation analogue of the soft-state invalidation the
//! heartbeat protocol provides in a deployment.
//!
//! All engine-level messages flow through a fault-injecting
//! [`Network`] facade. With the default empty [`FaultPlan`] it is a
//! bit-exact no-op; with faults installed ([`Engine::with_fault_plan`])
//! messages can be lost or cut off by partitions, lifecycle RPCs retry with
//! capped exponential backoff, and sustained heartbeat loss triggers
//! *spurious* failure detections that exercise the same recovery protocol —
//! including duplicate executions that the epoch mechanism must suppress.

use std::collections::{BTreeSet, HashMap, HashSet};

use dgrid_resources::{JobId, JobProfile, NodeProfile};
use dgrid_sim::fault::{Delivery, Endpoint, FaultPlan, Network};
use dgrid_sim::rng::{self, SimRng};
use dgrid_sim::telemetry::{RegistryHook, SharedRegistry, TimeSeries};
use dgrid_sim::{EventQueue, SimDuration, SimTime};
use rand::Rng;

use crate::config::{ChurnConfig, EngineConfig};
use crate::dag::JobDag;
use crate::job::{FailureReason, JobRecord, JobState, JobTable, OwnerRef};
use crate::matchmaker::Matchmaker;
use crate::metrics::SimReport;
use crate::node::{GridNodeId, NodeTable, QueuedJob};
use crate::trace::{NullObserver, Observer, TraceEvent};

mod shard;

/// A scheduled availability transition for one node (deterministic churn,
/// e.g. a diurnal desktop-availability trace: the machine leaves when its
/// user arrives in the morning and rejoins at night).
///
/// Departures from a trace are *graceful* — the volunteer client announces
/// them — unlike the stochastic crash churn of
/// [`ChurnConfig`](crate::ChurnConfig).
#[derive(Clone, Copy, Debug)]
pub struct AvailabilityEvent {
    /// When the transition happens, seconds from simulation start.
    pub at_secs: f64,
    /// Which node.
    pub node: GridNodeId,
    /// `true` = the node comes up; `false` = it leaves.
    pub up: bool,
}

/// One job the workload hands to the engine.
#[derive(Clone, Debug)]
pub struct JobSubmission {
    /// The job's profile (requirements, declared runtime, I/O sizes).
    pub profile: JobProfile,
    /// Client submission time, seconds from simulation start.
    pub arrival_secs: f64,
    /// True runtime if it differs from the declared one (runaway/malicious
    /// jobs for the sandbox experiments). Defaults to the declared runtime.
    pub actual_runtime_secs: Option<f64>,
}

#[derive(Debug)]
enum Event {
    Submit {
        job: JobId,
    },
    OwnerAssigned {
        job: JobId,
        epoch: u32,
        owner: OwnerRef,
    },
    RetryMatch {
        job: JobId,
        epoch: u32,
    },
    /// A lost submission-routing RPC is retried after backoff.
    ResendSubmit {
        job: JobId,
        epoch: u32,
    },
    /// Sustained heartbeat loss made the owner falsely declare the run node
    /// dead (the node is alive; its execution becomes a duplicate).
    SpuriousRunFailure {
        job: JobId,
        epoch: u32,
    },
    /// Sustained ack loss made the run node falsely declare the owner dead.
    SpuriousOwnerFailure {
        job: JobId,
        epoch: u32,
    },
    ArriveAtRunNode {
        job: JobId,
        epoch: u32,
    },
    Complete {
        job: JobId,
        epoch: u32,
        node: GridNodeId,
    },
    SandboxKill {
        job: JobId,
        epoch: u32,
        node: GridNodeId,
    },
    RunFailureDetected {
        job: JobId,
        epoch: u32,
    },
    OwnerFailureDetected {
        job: JobId,
        epoch: u32,
    },
    ClientResubmit {
        job: JobId,
        epoch: u32,
    },
    /// The owner's periodic lease-renewal heartbeat (lease mode only).
    /// Carries the lease seq it was scheduled under; a stale seq means the
    /// lease was re-granted meanwhile and the event is ignored.
    LeaseRenew {
        job: JobId,
        seq: u64,
    },
    /// A lease reached `ttl + grace` without a successful renewal. Stale
    /// seqs (the lease was renewed or re-granted) are ignored; a live seq
    /// expires the lease and transfers it to a freshly placed owner.
    LeaseExpire {
        job: JobId,
        seq: u64,
    },
    NodeFail {
        node: GridNodeId,
    },
    NodeLeave {
        node: GridNodeId,
    },
    NodeRejoin {
        node: GridNodeId,
    },
    Maintenance,
    /// Take one time-series sample of the grid gauges. Only ever scheduled
    /// when sampling is enabled, so the default path never sees it.
    TelemetrySample,
}

/// The simulation engine: nodes, jobs, one matchmaker, one event queue.
///
/// ```
/// use dgrid_core::{CentralizedMatchmaker, ChurnConfig, Engine, EngineConfig, JobSubmission};
/// use dgrid_resources::{Capabilities, ClientId, JobId, JobProfile, JobRequirements,
///                       NodeProfile, OsType};
///
/// let nodes = vec![NodeProfile::new(Capabilities::new(2.0, 4.0, 100.0, OsType::Linux)); 8];
/// let jobs: Vec<JobSubmission> = (0..20)
///     .map(|i| JobSubmission {
///         profile: JobProfile::new(JobId(i), ClientId(0), JobRequirements::unconstrained(), 30.0),
///         arrival_secs: i as f64,
///         actual_runtime_secs: None,
///     })
///     .collect();
/// let report = Engine::new(
///     EngineConfig::default(),
///     ChurnConfig::none(),
///     Box::new(CentralizedMatchmaker::new()),
///     nodes,
///     jobs,
/// )
/// .run();
/// assert_eq!(report.jobs_completed, 20);
/// ```
pub struct Engine {
    cfg: EngineConfig,
    churn: ChurnConfig,
    nodes: NodeTable,
    jobs: JobTable,
    mm: Box<dyn Matchmaker>,
    queue: EventQueue<Event>,
    rng_engine: SimRng,
    rng_mm: SimRng,
    rng_fail: SimRng,
    rng_net: SimRng,
    net: Network,
    report: SimReport,
    // BTreeSet, not HashSet: a departure iterates the owned set, and with
    // replications now running on pool workers a per-thread-seeded hash
    // order would leak the thread schedule into the event stream.
    owner_jobs: HashMap<GridNodeId, BTreeSet<JobId>>,
    dag: JobDag,
    dag_children: HashMap<JobId, Vec<JobId>>,
    observer: Box<dyn Observer>,
    outstanding: usize,
    registry: Option<SharedRegistry>,
    timeseries: Option<TimeSeries>,
    sample_every: SimDuration,
    /// `Some(S)` switches [`Engine::run`] to the sharded conservative-window
    /// kernel with `S` node shards. See [`Engine::set_sharded_execution`].
    shards: Option<usize>,
    /// Per-shard RNG/network state, created lazily on the first window (so
    /// it sees the final fault plan). Lives here rather than in the run
    /// loop so the shard count is pinned for the whole run.
    shard_states: Vec<Option<shard::ShardState>>,
    /// While a conservative window is open, emissions buffer here and flush
    /// sorted by `(time, commit order)` at the barrier; `None` (the
    /// sequential kernel) forwards straight to the observer.
    window_obs: Option<Vec<(SimTime, TraceEvent)>>,
}

impl Engine {
    /// Assemble an engine: nodes join the overlay, submissions and churn are
    /// scheduled, the matchmaker gets one initial maintenance tick.
    ///
    /// # Panics
    /// On invalid configuration, duplicate job ids, or an empty node set.
    pub fn new(
        cfg: EngineConfig,
        churn: ChurnConfig,
        matchmaker: Box<dyn Matchmaker>,
        node_profiles: Vec<NodeProfile>,
        submissions: Vec<JobSubmission>,
    ) -> Self {
        Self::with_dag(
            cfg,
            churn,
            matchmaker,
            node_profiles,
            submissions,
            JobDag::none(),
        )
    }

    /// Like [`Engine::new`], but with DAGMan-style job dependencies
    /// (Section 5): a job is submitted only after every parent completes
    /// (the parent's result GUID becomes its input), and a permanently
    /// failed parent cascades failure to all descendants.
    ///
    /// # Panics
    /// Additionally if `dag` references unknown jobs or contains a cycle.
    pub fn with_dag(
        cfg: EngineConfig,
        churn: ChurnConfig,
        matchmaker: Box<dyn Matchmaker>,
        node_profiles: Vec<NodeProfile>,
        submissions: Vec<JobSubmission>,
        dag: JobDag,
    ) -> Self {
        Self::with_dag_and_schedule(
            cfg,
            churn,
            matchmaker,
            node_profiles,
            submissions,
            dag,
            Vec::new(),
        )
    }

    /// The full constructor: dependencies plus a deterministic availability
    /// trace (diurnal desktop schedules and the like). Trace departures are
    /// graceful; stochastic [`ChurnConfig`] crashes can be layered on top.
    ///
    /// # Panics
    /// Additionally if a trace event references an unknown node.
    pub fn with_dag_and_schedule(
        cfg: EngineConfig,
        churn: ChurnConfig,
        mut matchmaker: Box<dyn Matchmaker>,
        node_profiles: Vec<NodeProfile>,
        submissions: Vec<JobSubmission>,
        dag: JobDag,
        schedule: Vec<AvailabilityEvent>,
    ) -> Self {
        cfg.validate();
        assert!(!node_profiles.is_empty(), "a grid needs at least one node");
        if cfg.leases_enabled() {
            // validate() guarantees a policy is present when leases are on.
            matchmaker.set_placement(cfg.placement.expect("validated placement"));
        }

        let nodes = NodeTable::new(node_profiles);
        let mut rng_mm = rng::rng_for(cfg.seed, rng::streams::MATCHMAKER);
        let mut rng_fail = rng::rng_for(cfg.seed, rng::streams::FAILURES);
        let mut queue = EventQueue::new();

        matchmaker.bootstrap(&nodes, &mut rng_mm);
        matchmaker.tick(&nodes);

        let known: HashSet<JobId> = submissions.iter().map(|s| s.profile.id).collect();
        dag.validate(&known);
        let dag_children = dag.children_index();

        let mut jobs = JobTable::with_capacity(submissions.len());
        for sub in &submissions {
            let actual = sub.actual_runtime_secs.unwrap_or(sub.profile.run_time_secs);
            assert!(actual > 0.0, "non-positive runtime for {}", sub.profile.id);
            let at = SimTime::from_secs_f64(sub.arrival_secs);
            let id = sub.profile.id;
            let fresh = jobs.insert(id, JobRecord::new(sub.profile, actual, at));
            assert!(fresh, "duplicate job id {id}");
            let parents = dag.parents_of(id).len();
            if parents == 0 {
                queue.schedule(at, Event::Submit { job: id });
            } else {
                // Held back until the last parent completes.
                let rec = jobs.get_mut(id).expect("just inserted");
                rec.unmet_parents = parents as u32;
                rec.held_arrival = Some(at);
            }
        }

        // Churn injection: exponential lifetimes per node; each departure
        // is graceful with the configured probability.
        if let Some(mttf) = churn.mttf_secs {
            assert!(
                (0.0..=1.0).contains(&churn.graceful_fraction),
                "graceful_fraction out of range"
            );
            for id in nodes.alive_ids() {
                let at = SimTime::from_secs_f64(rng::sample_exp(&mut rng_fail, mttf));
                let ev = if rng_fail.gen_bool(churn.graceful_fraction) {
                    Event::NodeLeave { node: id }
                } else {
                    Event::NodeFail { node: id }
                };
                queue.schedule(at, ev);
            }
        }
        for ev in &schedule {
            assert!(
                (ev.node.0 as usize) < nodes.len(),
                "availability event for unknown node {:?}",
                ev.node
            );
            let at = SimTime::from_secs_f64(ev.at_secs);
            let event = if ev.up {
                Event::NodeRejoin { node: ev.node }
            } else {
                Event::NodeLeave { node: ev.node }
            };
            queue.schedule(at, event);
        }
        queue.schedule(
            SimTime::from_secs_f64(cfg.maintenance_secs),
            Event::Maintenance,
        );

        let outstanding = jobs.len();
        Engine {
            report: SimReport {
                algorithm: matchmaker.name().to_string(),
                jobs_total: jobs.len() as u64,
                ..SimReport::default()
            },
            rng_engine: rng::rng_for(cfg.seed, rng::streams::ARRIVALS ^ 0xE16),
            rng_net: rng::rng_for(cfg.seed, rng::streams::NETWORK),
            net: Network::new(
                cfg.latency,
                FaultPlan::none(),
                rng::rng_for(cfg.seed, rng::streams::FAULT_INJECTION),
            ),
            cfg,
            churn,
            nodes,
            jobs,
            mm: matchmaker,
            queue,
            rng_mm,
            rng_fail,
            owner_jobs: HashMap::new(),
            dag,
            dag_children,
            observer: Box::new(NullObserver),
            outstanding,
            registry: None,
            timeseries: None,
            sample_every: SimDuration::ZERO,
            shards: None,
            shard_states: Vec::new(),
            window_obs: None,
        }
    }

    /// Switch [`Engine::run`] to the space-parallel conservative-window
    /// kernel with `shards` node shards (see the module docs of
    /// [`shard`](self) internals): events execute against shard-local state
    /// inside windows bounded by the network's minimum latency, and a
    /// deterministic barrier merges their effects in `(time, seq)` order.
    ///
    /// The output is a pure function of the configuration **and of `S`**:
    /// for a fixed shard count the event stream and report are byte-identical
    /// at every worker-thread count (including one), but they are *not* the
    /// sequential kernel's bytes — sharding gives each shard its own derived
    /// network RNG stream. Callers that compare runs must therefore compare
    /// sharded-to-sharded with equal `S` (the CLI pins
    /// [`DEFAULT_SHARDS`](Engine::DEFAULT_SHARDS)).
    ///
    /// # Panics
    /// If `shards` is zero.
    pub fn set_sharded_execution(&mut self, shards: usize) {
        assert!(shards > 0, "shard count must be positive");
        self.shards = Some(shards);
    }

    /// Enable sharded execution, builder-style.
    pub fn with_sharded_execution(mut self, shards: usize) -> Self {
        self.set_sharded_execution(shards);
        self
    }

    /// Install a lifecycle [`Observer`] (tracing, test assertions,
    /// visualization). Call before [`Engine::run`].
    pub fn set_observer(&mut self, observer: Box<dyn Observer>) {
        self.observer = observer;
    }

    /// Install an observer, builder-style.
    pub fn with_observer(mut self, observer: Box<dyn Observer>) -> Self {
        self.set_observer(observer);
        self
    }

    /// Install a shared [`MetricsRegistry`](dgrid_sim::telemetry::MetricsRegistry):
    /// the matchmaker's overlay operations report lookup hops, failovers,
    /// and retries into it (via a [`RegistryHook`]), and time-series
    /// sampling mirrors its gauges. Call before [`Engine::run`]; when not
    /// installed, nothing on the hot path references telemetry at all.
    pub fn set_telemetry_registry(&mut self, registry: SharedRegistry) {
        self.mm
            .set_telemetry_hook(RegistryHook::shared(registry.clone()));
        self.registry = Some(registry);
    }

    /// Install a telemetry registry, builder-style.
    pub fn with_telemetry_registry(mut self, registry: SharedRegistry) -> Self {
        self.set_telemetry_registry(registry);
        self
    }

    /// Enable virtual-time gauge sampling: every `every`, the engine
    /// records queue depth, free nodes, in-flight jobs, cumulative retries,
    /// and live-node count into a [`TimeSeries`] returned in
    /// [`SimReport::timeseries`]. The sampler is driven by its own
    /// recurring event, so runs without sampling pay nothing.
    ///
    /// # Panics
    /// If `every` is zero.
    pub fn set_timeseries_sampling(&mut self, every: SimDuration) {
        assert!(!every.is_zero(), "sampling cadence must be positive");
        if self.timeseries.is_none() {
            // First sample fires at t=0 so the series covers the whole run.
            self.queue.schedule(SimTime::ZERO, Event::TelemetrySample);
        }
        self.sample_every = every;
        self.timeseries = Some(TimeSeries::new(every.as_secs_f64()));
    }

    /// Enable gauge sampling, builder-style.
    pub fn with_timeseries_sampling(mut self, every: SimDuration) -> Self {
        self.set_timeseries_sampling(every);
        self
    }

    /// Install a [`FaultPlan`]. Call before [`Engine::run`].
    ///
    /// Scheduled crashes become abrupt node failures (with a rejoin when the
    /// plan says so); loss, partitions, and latency spikes take effect per
    /// message. Installing [`FaultPlan::none`] is a bit-exact no-op: the
    /// simulation is indistinguishable from one without a fault layer.
    ///
    /// # Panics
    /// On an invalid plan or a crash referencing an unknown node.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        plan.validate();
        for c in &plan.crashes {
            assert!(
                (c.node as usize) < self.nodes.len(),
                "crash scheduled for unknown node {}",
                c.node
            );
            let at = SimTime::from_secs_f64(c.at_secs);
            let node = GridNodeId(c.node);
            self.queue.schedule(at, Event::NodeFail { node });
            if let Some(r) = c.rejoin_after_secs {
                self.queue.schedule(
                    at + SimDuration::from_secs_f64(r),
                    Event::NodeRejoin { node },
                );
            }
        }
        self.net = Network::new(
            self.cfg.latency,
            plan,
            rng::rng_for(self.cfg.seed, rng::streams::FAULT_INJECTION),
        );
    }

    /// Install a fault plan, builder-style.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// The shard count the CLI pins when `run --threads` enables sharded
    /// execution. One fixed value for every thread count is what keeps the
    /// streams comparable across `--threads 1/2/8`; 64 shards keep all
    /// plausible worker counts busy without fragmenting the windows.
    pub const DEFAULT_SHARDS: usize = 64;

    /// Forward a lifecycle event to the observer — or, while a conservative
    /// window is open, into the window buffer that the barrier flushes in
    /// `(time, commit order)` sorted order. Every emission in the engine
    /// goes through here so the two kernels share one code path.
    fn emit(&mut self, at: SimTime, event: TraceEvent) {
        match &mut self.window_obs {
            Some(buf) => buf.push((at, event)),
            None => self.observer.on_event(at, event),
        }
    }

    /// Run to completion and return the report.
    pub fn run(mut self) -> SimReport {
        let horizon = SimTime::from_secs_f64(self.cfg.max_sim_secs);
        let makespan = if self.shards.is_some() {
            self.run_sharded_loop(horizon)
        } else {
            self.run_sequential_loop(horizon)
        };
        // Jobs still open at the horizon fail, in id order: the table
        // iterates in insertion order, and the failure order is visible in
        // the trace stream, so it is pinned by an explicit sort.
        let mut open: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, r)| !r.state.is_terminal())
            .map(|(id, _)| id)
            .collect();
        open.sort_unstable();
        for id in open {
            self.fail_job(id, FailureReason::HorizonExceeded, makespan);
        }
        // Final per-node accounting.
        self.report.node_busy_secs = (0..self.nodes.len() as u32)
            .map(|i| self.nodes.get(GridNodeId(i)).busy_secs)
            .collect();
        self.report.node_jobs = (0..self.nodes.len() as u32)
            .map(|i| self.nodes.get(GridNodeId(i)).completed_jobs)
            .collect();
        self.report.makespan_secs = makespan.as_secs_f64();
        self.report.wait_stats = Some(self.report.wait_time.summary());
        self.report.turnaround_stats = Some(self.report.turnaround.summary());
        self.report.tenant_fairness = Some(self.report.client_fairness());
        self.report.timeseries = self.timeseries.take();
        self.report.stream_bytes_written = self.observer.bytes_written().unwrap_or(0);
        self.report
    }

    /// The classic one-event-at-a-time kernel.
    fn run_sequential_loop(&mut self, horizon: SimTime) -> SimTime {
        let mut makespan = SimTime::ZERO;
        while self.outstanding > 0 {
            let Some((now, ev)) = self.queue.pop() else {
                break;
            };
            if now > horizon {
                break;
            }
            self.dispatch(now, ev);
            makespan = now;
        }
        makespan
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Submit { job } => self.handle_submit(now, job),
            Event::OwnerAssigned { job, epoch, owner } => {
                self.handle_owner_assigned(now, job, epoch, owner)
            }
            Event::RetryMatch { job, epoch } => {
                if self.epoch_valid(job, epoch) {
                    self.try_match(now, job);
                }
            }
            Event::ResendSubmit { job, epoch } => {
                if self.epoch_valid(job, epoch) {
                    self.route_submission(now, job, epoch);
                }
            }
            Event::SpuriousRunFailure { job, epoch } => {
                self.handle_spurious_run_failure(now, job, epoch)
            }
            Event::SpuriousOwnerFailure { job, epoch } => {
                self.handle_spurious_owner_failure(now, job, epoch)
            }
            Event::ArriveAtRunNode { job, epoch } => self.handle_arrive(now, job, epoch),
            Event::Complete { job, epoch, node } => self.handle_complete(now, job, epoch, node),
            Event::SandboxKill { job, epoch, node } => {
                self.handle_sandbox_kill(now, job, epoch, node)
            }
            Event::RunFailureDetected { job, epoch } => {
                self.handle_run_failure_detected(now, job, epoch)
            }
            Event::OwnerFailureDetected { job, epoch } => {
                self.handle_owner_failure_detected(now, job, epoch)
            }
            Event::ClientResubmit { job, epoch } => self.handle_client_resubmit(now, job, epoch),
            Event::LeaseRenew { job, seq } => self.handle_lease_renew(now, job, seq),
            Event::LeaseExpire { job, seq } => self.handle_lease_expire(now, job, seq),
            Event::NodeFail { node } => self.handle_node_depart(now, node, false),
            Event::NodeLeave { node } => self.handle_node_depart(now, node, true),
            Event::NodeRejoin { node } => self.handle_node_rejoin(now, node),
            Event::Maintenance => {
                self.mm.tick(&self.nodes);
                if self.outstanding > 0 {
                    // Relative to the event's own time, not the queue clock:
                    // under the windowed kernel the clock sits at the window
                    // start while this dispatches at the barrier.
                    self.queue.schedule(
                        now + SimDuration::from_secs_f64(self.cfg.maintenance_secs),
                        Event::Maintenance,
                    );
                }
            }
            Event::TelemetrySample => self.handle_telemetry_sample(now),
        }
    }

    /// Record one row of grid gauges into the time series (and mirror them
    /// into the registry when one is installed), then reschedule. Draws no
    /// randomness and mutates no simulation state, so enabling sampling
    /// cannot change a run's outcome.
    fn handle_telemetry_sample(&mut self, now: SimTime) {
        let Some(ts) = self.timeseries.as_mut() else {
            return;
        };
        // O(1) from the node table's SoA aggregates — identical values to
        // the historical per-node walk.
        let queue_depth = self.nodes.total_alive_load() as usize;
        let free_nodes = self.nodes.idle_alive_count();
        // Cumulative retries as already folded into the report (overlay
        // failovers drained from the matchmaker plus engine RPC resends).
        let retries = self.report.lookup_retries;
        let row: [(&str, f64); 5] = [
            ("queue_depth", queue_depth as f64),
            ("free_nodes", free_nodes as f64),
            ("in_flight", self.outstanding as f64),
            ("retries", retries as f64),
            ("nodes_alive", self.nodes.alive_count() as f64),
        ];
        ts.record(now, &row);
        if let Some(reg) = &self.registry {
            let mut reg = reg.borrow_mut();
            for (name, v) in row {
                reg.gauge_set(name, v);
            }
        }
        if self.outstanding > 0 {
            self.queue
                .schedule(now + self.sample_every, Event::TelemetrySample);
        }
    }

    fn epoch_valid(&self, job: JobId, epoch: u32) -> bool {
        self.jobs
            .get(job)
            .is_some_and(|r| !r.state.is_terminal() && r.epoch == epoch)
    }

    /// Checked job lookup for the recovery paths. A missing record means an
    /// engine invariant broke; instead of aborting the whole replication
    /// with a panic, the breach is counted (`unknown_job_events`) and the
    /// event dropped — the conservation oracle then reports the stuck job,
    /// the same way the `was_terminal` guard surfaces double commits.
    fn job_mut(&mut self, job: JobId) -> Option<&mut JobRecord> {
        if !self.jobs.contains(job) {
            self.report.unknown_job_events += 1;
            return None;
        }
        self.jobs.get_mut(job)
    }

    /// Shared-reference variant of [`Engine::job_mut`].
    fn job_ref(&mut self, job: JobId) -> Option<&JobRecord> {
        if !self.jobs.contains(job) {
            self.report.unknown_job_events += 1;
            return None;
        }
        self.jobs.get(job)
    }

    fn guid_of(&self, job: JobId, resubmits: u32) -> u64 {
        rng::splitmix64(job.0.wrapping_add(u64::from(resubmits) << 48))
    }

    fn endpoint_of(owner: OwnerRef) -> Endpoint {
        match owner {
            OwnerRef::Server => Endpoint::External,
            OwnerRef::Peer(p) => Endpoint::Node(p.0),
        }
    }

    /// Send one engine-level message through the fault-injecting network,
    /// counting losses. Latency draws come from the network RNG in exactly
    /// the pre-fault-layer order, so an empty plan changes nothing.
    fn send_message(&mut self, now: SimTime, from: Endpoint, to: Endpoint, hops: u32) -> Delivery {
        let d = self.net.send(&mut self.rng_net, now, from, to, hops);
        if !d.is_delivered() {
            self.report.messages_lost += 1;
        }
        d
    }

    /// Fold the matchmaker's drained overlay-failover retry count into the
    /// report. Called after every overlay operation.
    fn absorb_lookup_retries(&mut self) {
        self.report.lookup_retries += self.mm.take_lookup_retries();
    }

    /// RPC timeout plus capped exponential backoff with jitter for the
    /// given zero-based retry attempt. Jitter draws from the fault RNG, so
    /// this must only be called on a fault path (losses never happen with
    /// an empty plan).
    fn backoff_delay(&mut self, attempt: u32) -> SimDuration {
        let backoff = (self.cfg.backoff_base_secs * 2f64.powi(attempt.min(16) as i32))
            .min(self.cfg.backoff_cap_secs);
        let jitter = self.cfg.backoff_jitter;
        let factor = if jitter > 0.0 {
            1.0 + jitter * (self.net.fault_rng().gen::<f64>() * 2.0 - 1.0)
        } else {
            1.0
        };
        SimDuration::from_secs_f64(self.cfg.rpc_timeout_secs + backoff * factor)
    }

    /// A lifecycle RPC (submission routing when `via_submit`, otherwise the
    /// owner→run-node job transfer) was lost: retry after backoff, or fall
    /// back to client resubmission once the retry budget is spent.
    fn note_rpc_loss(&mut self, now: SimTime, job: JobId, epoch: u32, via_submit: bool) {
        let attempts = {
            let Some(rec) = self.job_mut(job) else { return };
            rec.rpc_attempts += 1;
            rec.rpc_attempts
        };
        if attempts > self.cfg.max_rpc_retries {
            self.schedule_client_resubmit(now, job, epoch);
            return;
        }
        let d = self.backoff_delay(attempts - 1);
        let ev = if via_submit {
            Event::ResendSubmit { job, epoch }
        } else {
            Event::RetryMatch { job, epoch }
        };
        self.queue.schedule(now + d, ev);
    }

    /// Total virtual time for a transfer retried until it gets through:
    /// each loss costs a timeout plus backoff; past the retry budget the
    /// receiver-side poll picks the data up one backoff cap later. Used for
    /// result return, which the client pulls and therefore never abandons.
    fn deliver_with_retries(
        &mut self,
        now: SimTime,
        from: Endpoint,
        to: Endpoint,
        hops: u32,
    ) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let mut attempt = 0u32;
        loop {
            if let Delivery::Delivered(d) = self.send_message(now + total, from, to, hops) {
                return total + d;
            }
            if attempt >= self.cfg.max_rpc_retries {
                return total + SimDuration::from_secs_f64(self.cfg.backoff_cap_secs);
            }
            total += self.backoff_delay(attempt);
            attempt += 1;
        }
    }

    // ------------------------------------------------------------------
    // Lease subsystem: one grant/renew/expire/transfer state machine.
    //
    // When `cfg.leases_enabled()`, every peer owner holds a renewable lease
    // on each job it owns, registered (conceptually) at the job's DHT key.
    // The owner renews every `lease_renew_secs` with a message to the
    // registrar; a lease not renewed for `ttl + grace` expires and is
    // transferred to a freshly *placed* owner — which weighs reported node
    // load under `PlacementPolicy::LoadAware` instead of rehashing into the
    // substrate's skew. Owner-death recovery then needs no heartbeat
    // detection at all: expiry is the detection. With leases off none of
    // this schedules anything, draws nothing, and the engine is bit-exact
    // the pre-lease engine.
    // ------------------------------------------------------------------

    /// Grant (or re-grant) the lease on `job` to its freshly installed peer
    /// owner: bump the per-job lease seq — invalidating every in-flight
    /// renew/expire for older grants — and schedule the first renewal plus
    /// the ttl+grace expiry under the new seq. Server owners (the reliable
    /// centralized baseline) hold an implicit permanent lease.
    fn grant_lease(&mut self, now: SimTime, job: JobId) {
        if !self.cfg.leases_enabled() {
            return;
        }
        let Some(rec) = self.job_mut(job) else { return };
        if rec.state.is_terminal() {
            return;
        }
        if !matches!(rec.owner, Some(OwnerRef::Peer(_))) {
            rec.lease = None;
            return;
        }
        rec.lease_seq += 1;
        let seq = rec.lease_seq;
        rec.lease = Some(seq);
        self.queue.schedule(
            now + SimDuration::from_secs_f64(self.cfg.lease_renew_secs),
            Event::LeaseRenew { job, seq },
        );
        self.schedule_lease_expiry(now, job, seq);
    }

    /// Arm the expiry clock for lease `seq`: it fires `ttl + grace` after
    /// the grant or last successful renewal.
    fn schedule_lease_expiry(&mut self, now: SimTime, job: JobId, seq: u64) {
        let bound = self
            .cfg
            .lease_expiry_bound_secs()
            .expect("only called in lease mode");
        self.queue.schedule(
            now + SimDuration::from_secs_f64(bound),
            Event::LeaseExpire { job, seq },
        );
    }

    /// The owner's renewal heartbeat. A delivered renewal re-arms both the
    /// renewal and expiry clocks under a fresh seq (the pending expiry goes
    /// stale); a lost one retries at the next heartbeat under the *same*
    /// seq, so the expiry armed by the last successful renewal stands — a
    /// partition outlasting `ttl + grace` therefore expires the lease.
    fn handle_lease_renew(&mut self, now: SimTime, job: JobId, seq: u64) {
        let Some(rec) = self.job_ref(job) else { return };
        if rec.state.is_terminal() || rec.lease != Some(seq) {
            return;
        }
        let Some(OwnerRef::Peer(owner)) = rec.owner else {
            return;
        };
        let resubmits = rec.resubmits;
        if !self.nodes.is_alive(owner) {
            // A dead owner renews nothing; the pending expiry stands and
            // will transfer the lease — this *is* the failure detection.
            return;
        }
        let guid = self.guid_of(job, resubmits);
        let registrar = self.mm.lease_registrar(&self.nodes, guid);
        // Renew at the substrate owner of the job's key; when the overlay
        // has no live registrar, fall back to the reliable registry.
        let to = registrar.map_or(Endpoint::External, |g| Endpoint::Node(g.0));
        let renew_in = SimDuration::from_secs_f64(self.cfg.lease_renew_secs);
        match self.send_message(now, Endpoint::Node(owner.0), to, 1) {
            Delivery::Delivered(_) => {
                self.report.lease_renewals += 1;
                let Some(rec) = self.job_mut(job) else { return };
                rec.lease_seq += 1;
                let seq = rec.lease_seq;
                rec.lease = Some(seq);
                self.queue
                    .schedule(now + renew_in, Event::LeaseRenew { job, seq });
                self.schedule_lease_expiry(now, job, seq);
            }
            _ => {
                self.queue
                    .schedule(now + renew_in, Event::LeaseRenew { job, seq });
            }
        }
    }

    /// A lease ran out its `ttl + grace`: the holder — dead, partitioned,
    /// or silently gone — loses ownership and the lease transfers.
    fn handle_lease_expire(&mut self, now: SimTime, job: JobId, seq: u64) {
        let Some(rec) = self.job_ref(job) else { return };
        if rec.state.is_terminal() || rec.lease != Some(seq) {
            return;
        }
        self.report.lease_expiries += 1;
        self.emit(now, TraceEvent::LeaseExpired { job });
        self.detach_owner(job);
        let Some(rec) = self.job_mut(job) else { return };
        rec.owner = None;
        rec.lease = None;
        self.transfer_lease(now, job);
    }

    /// Place a new owner for an expired lease. The overlay's
    /// `reassign_owner` (honouring the configured placement policy) is
    /// asked first; if it cannot name a live peer the engine falls back to
    /// the deterministic least-loaded live node (lowest id on ties), so a
    /// transfer succeeds whenever *any* live candidate exists — the
    /// property the no-orphan oracle checks. With an empty grid the expiry
    /// clock is simply re-armed.
    fn transfer_lease(&mut self, now: SimTime, job: JobId) {
        let Some(rec) = self.job_ref(job) else { return };
        let resubmits = rec.resubmits;
        let profile = rec.profile;
        let guid = self.guid_of(job, resubmits);
        let mut choice: Option<(GridNodeId, u32)> = None;
        if self.nodes.alive_count() > 0 {
            let reassigned = self
                .mm
                .reassign_owner(&self.nodes, &profile, guid, &mut self.rng_mm);
            self.absorb_lookup_retries();
            choice = match reassigned {
                Some((OwnerRef::Peer(p), hops)) if self.nodes.is_alive(p) => Some((p, hops)),
                _ => None,
            };
            if choice.is_none() {
                // Least loaded live node, lowest id on ties — served by the
                // node table's min-load index in O(1) instead of the old
                // full-table scan (`node.rs` proves the choices identical).
                choice = self.nodes.least_loaded_alive().map(|id| (id, 0));
            }
        }
        match choice {
            Some((new_owner, hops)) => {
                self.report.owner_hops.push(f64::from(hops));
                self.report.lease_transfers += 1;
                let Some(rec) = self.job_mut(job) else { return };
                rec.owner = Some(OwnerRef::Peer(new_owner));
                self.owner_jobs.entry(new_owner).or_default().insert(job);
                self.emit(
                    now,
                    TraceEvent::LeaseTransferred {
                        job,
                        owner: new_owner,
                    },
                );
                self.grant_lease(now, job);
                // Execution in progress survives the transfer untouched
                // (no epoch bump — the at-most-once argument is the same
                // as for spurious owner recovery). An idle job resumes
                // matchmaking under its new owner immediately.
                let idle = self
                    .jobs
                    .get(job)
                    .expect("lease transfer of known job")
                    .run_node
                    .is_none_or(|r| !self.nodes.is_alive(r));
                if idle {
                    let Some(rec) = self.job_mut(job) else { return };
                    rec.state = JobState::Recovering;
                    rec.run_node = None;
                    rec.invalidate();
                    rec.match_attempts = 0;
                    rec.rpc_attempts = 0;
                    self.try_match(now, job);
                }
            }
            None => {
                // No live candidate anywhere: hold the lease vacant and
                // re-arm the clock; the bound restarts once nodes rejoin.
                let Some(rec) = self.job_mut(job) else { return };
                rec.lease_seq += 1;
                let seq = rec.lease_seq;
                rec.lease = Some(seq);
                self.schedule_lease_expiry(now, job, seq);
            }
        }
    }

    // ------------------------------------------------------------------
    // Lifecycle handlers
    // ------------------------------------------------------------------

    fn handle_submit(&mut self, now: SimTime, job: JobId) {
        let Some(rec) = self.job_ref(job) else { return };
        if rec.state.is_terminal() {
            return;
        }
        self.detach_owner(job);
        let Some(rec) = self.job_mut(job) else { return };
        rec.state = JobState::Matching;
        rec.match_attempts = 0;
        rec.rpc_attempts = 0;
        rec.owner = None;
        rec.run_node = None;
        // Any lease from an earlier life of this job is abandoned: pending
        // renew/expire events find `lease == None` and drop themselves.
        rec.lease = None;
        rec.invalidate();
        let epoch = rec.epoch;
        let resubmits = rec.resubmits;
        self.emit(now, TraceEvent::Submitted { job, resubmits });
        self.route_submission(now, job, epoch);
    }

    /// Figure 1, steps 1–2 as one RPC: route the submission through a random
    /// injection node to the owner-to-be. A lost send backs off and retries
    /// via [`Event::ResendSubmit`].
    fn route_submission(&mut self, now: SimTime, job: JobId, epoch: u32) {
        let Some(rec) = self.job_ref(job) else { return };
        let resubmits = rec.resubmits;
        let profile = rec.profile;
        let Some(injection) = self.nodes.random_alive(&mut self.rng_engine) else {
            // Empty grid: retry after the resubmit timeout, like a client
            // that cannot find an entry point.
            self.schedule_client_resubmit(now, job, epoch);
            return;
        };
        let guid = self.guid_of(job, resubmits);
        let assigned =
            self.mm
                .assign_owner(&self.nodes, &profile, guid, injection, &mut self.rng_mm);
        self.absorb_lookup_retries();
        match assigned {
            Some((owner, hops)) => {
                self.report.owner_hops.push(f64::from(hops));
                // client -> injection -> ... -> owner
                match self.send_message(now, Endpoint::External, Self::endpoint_of(owner), hops + 1)
                {
                    Delivery::Delivered(d) => {
                        if let Some(rec) = self.job_mut(job) {
                            rec.rpc_attempts = 0;
                        }
                        self.queue
                            .schedule(now + d, Event::OwnerAssigned { job, epoch, owner });
                    }
                    _ => self.note_rpc_loss(now, job, epoch, true),
                }
            }
            None => {
                // Overlay in flux; treat as a failed matchmaking attempt.
                self.note_match_failure(now, job, epoch);
            }
        }
    }

    fn handle_owner_assigned(&mut self, now: SimTime, job: JobId, epoch: u32, owner: OwnerRef) {
        if !self.epoch_valid(job, epoch) {
            return;
        }
        // The designated owner may have died while the job was in transit.
        if let OwnerRef::Peer(p) = owner {
            if !self.nodes.is_alive(p) {
                let Some(rec) = self.job_ref(job) else { return };
                let resubmits = rec.resubmits;
                let profile = rec.profile;
                let guid = self.guid_of(job, resubmits);
                let reassigned =
                    self.mm
                        .reassign_owner(&self.nodes, &profile, guid, &mut self.rng_mm);
                self.absorb_lookup_retries();
                match reassigned {
                    Some((new_owner, hops)) => {
                        self.report.owner_hops.push(f64::from(hops));
                        match self.send_message(
                            now,
                            Endpoint::External,
                            Self::endpoint_of(new_owner),
                            hops,
                        ) {
                            Delivery::Delivered(d) => {
                                if let Some(rec) = self.job_mut(job) {
                                    rec.rpc_attempts = 0;
                                }
                                self.queue.schedule(
                                    now + d,
                                    Event::OwnerAssigned {
                                        job,
                                        epoch,
                                        owner: new_owner,
                                    },
                                );
                            }
                            _ => self.note_rpc_loss(now, job, epoch, true),
                        }
                    }
                    None => self.note_match_failure(now, job, epoch),
                }
                return;
            }
        }
        let Some(rec) = self.job_mut(job) else { return };
        rec.owner = Some(owner);
        if let OwnerRef::Peer(p) = owner {
            self.owner_jobs.entry(p).or_default().insert(job);
        }
        self.emit(now, TraceEvent::OwnerAssigned { job, owner });
        self.grant_lease(now, job);
        self.try_match(now, job);
    }

    /// Figure 1, step 3: the owner searches for a run node.
    fn try_match(&mut self, now: SimTime, job: JobId) {
        let Some(rec) = self.job_mut(job) else { return };
        if rec.state.is_terminal() {
            return;
        }
        let Some(owner) = rec.owner else {
            // Owner lost before matching; the epoch-valid path that led here
            // guarantees a resubmission, detection, or lease-expiry event is
            // pending.
            return;
        };
        let epoch = rec.epoch;
        // Owner must be alive to conduct matchmaking.
        if let OwnerRef::Peer(p) = owner {
            if !self.nodes.is_alive(p) {
                if self.cfg.leases_enabled() {
                    // The dead owner's lease expires and transfers the job;
                    // no client involvement needed.
                    return;
                }
                self.schedule_client_resubmit(now, job, epoch);
                return;
            }
        }
        let Some(rec) = self.job_mut(job) else { return };
        rec.state = JobState::Matching;
        rec.match_attempts += 1;
        let profile = rec.profile;
        let outcome = self
            .mm
            .find_run_node(&self.nodes, owner, &profile, &mut self.rng_mm);
        self.absorb_lookup_retries();
        match outcome.run_node {
            Some(run) if self.nodes.is_alive(run) => {
                self.report.match_hops.push(f64::from(outcome.hops));
                self.emit(
                    now,
                    TraceEvent::Matched {
                        job,
                        run_node: run,
                        hops: outcome.hops,
                    },
                );
                // owner -> run node transfer
                match self.send_message(
                    now,
                    Self::endpoint_of(owner),
                    Endpoint::Node(run.0),
                    outcome.hops + 1,
                ) {
                    Delivery::Delivered(d) => {
                        let Some(rec) = self.job_mut(job) else { return };
                        rec.run_node = Some(run);
                        rec.state = JobState::Queued;
                        rec.invalidate();
                        rec.rpc_attempts = 0;
                        let epoch = rec.epoch;
                        self.queue
                            .schedule(now + d, Event::ArriveAtRunNode { job, epoch });
                    }
                    // Transfer lost: nothing committed; a fresh matchmaking
                    // round runs after backoff.
                    _ => self.note_rpc_loss(now, job, epoch, false),
                }
            }
            _ => self.note_match_failure(now, job, epoch),
        }
    }

    fn note_match_failure(&mut self, now: SimTime, job: JobId, epoch: u32) {
        self.report.match_failures += 1;
        let Some(rec) = self.job_mut(job) else { return };
        let attempts = rec.match_attempts;
        if attempts >= self.cfg.max_match_attempts {
            self.fail_job(job, FailureReason::NoMatch, now);
        } else {
            self.queue.schedule(
                now + SimDuration::from_secs_f64(self.cfg.match_retry_secs),
                Event::RetryMatch { job, epoch },
            );
        }
    }

    /// Figure 1, step 5: the job reaches the run node's FIFO queue.
    fn handle_arrive(&mut self, now: SimTime, job: JobId, epoch: u32) {
        if !self.epoch_valid(job, epoch) {
            return;
        }
        let Some(rec) = self.job_ref(job) else { return };
        let profile = rec.profile;
        let arrival_epoch = rec.epoch;
        let Some(run) = rec.run_node else {
            // Arrival without an assignment is the same invariant breach as
            // an unknown job: count it and drop the event.
            self.report.unknown_job_events += 1;
            return;
        };
        if !self.nodes.is_alive(run) {
            // Died while the job was in transit: the owner's heartbeat
            // timeout fires as if the job had been accepted.
            self.begin_run_failure_recovery(now, job);
            return;
        }
        if self.cfg.sandbox.rejects_at_admission(&profile) {
            self.report.sandbox_kills += 1;
            self.fail_job(job, FailureReason::SandboxKilled, now);
            return;
        }
        let runtime = self.effective_runtime(job, run);
        if let Some(rec) = self.job_mut(job) {
            rec.queued_at = Some(now);
        }
        if self.nodes.get(run).running_job().is_none() {
            self.start_job(now, job, run, runtime);
        } else {
            self.nodes.enqueue(
                run,
                QueuedJob {
                    job,
                    runtime_secs: runtime,
                    epoch: arrival_epoch,
                },
            );
            if let Some(rec) = self.job_mut(job) {
                rec.state = JobState::Queued;
            }
        }
    }

    fn effective_runtime(&self, job: JobId, run: GridNodeId) -> f64 {
        let rec = self.jobs.get(job).expect("runtime of known job");
        if self.cfg.scale_runtime_by_cpu {
            let cpu = self
                .nodes
                .get(run)
                .profile
                .capabilities
                .get(dgrid_resources::ResourceKind::CpuSpeed)
                .max(0.1);
            rec.actual_runtime_secs * self.cfg.reference_cpu_ghz / cpu
        } else {
            rec.actual_runtime_secs
        }
    }

    fn start_job(&mut self, now: SimTime, job: JobId, run: GridNodeId, runtime: f64) {
        let Some(rec) = self.job_mut(job) else { return };
        rec.state = JobState::Running;
        if rec.started_at.is_none() {
            rec.started_at = Some(now);
        }
        rec.invalidate();
        let epoch = rec.epoch;
        let profile = rec.profile;
        self.emit(now, TraceEvent::Started { job, run_node: run });
        let kill_after = self.cfg.sandbox.kill_after_secs(&profile);

        self.nodes.set_running(
            run,
            QueuedJob {
                job,
                runtime_secs: runtime,
                epoch,
            },
            now + SimDuration::from_secs_f64(runtime),
        );

        match kill_after {
            Some(k) if runtime > k => {
                self.queue.schedule(
                    now + SimDuration::from_secs_f64(k),
                    Event::SandboxKill {
                        job,
                        epoch,
                        node: run,
                    },
                );
            }
            _ => {
                self.queue.schedule(
                    now + SimDuration::from_secs_f64(runtime),
                    Event::Complete {
                        job,
                        epoch,
                        node: run,
                    },
                );
            }
        }
        if self.net.faulty() {
            self.schedule_spurious_detections(now, job, run, runtime);
        }
    }

    /// While `job` executes on `run`, scan the heartbeat schedule in both
    /// directions for `heartbeat_misses` consecutive losses; the first such
    /// run makes the monitoring side falsely declare its partner dead —
    /// Section 2's detection rule misfiring on a lossy network. Only called
    /// in fault mode (the scan draws from the fault RNG).
    fn schedule_spurious_detections(
        &mut self,
        now: SimTime,
        job: JobId,
        run: GridNodeId,
        runtime: f64,
    ) {
        let Some(rec) = self.job_ref(job) else { return };
        let Some(owner) = rec.owner else { return };
        let epoch = rec.epoch;
        let owner_ep = Self::endpoint_of(owner);
        let run_ep = Endpoint::Node(run.0);
        let period = self.cfg.heartbeat_secs;
        let misses = self.cfg.heartbeat_misses;
        // Run node -> owner heartbeats: the owner spuriously detects a run
        // failure and re-runs matchmaking under a fresh epoch.
        if let Some(t) = self
            .net
            .first_consecutive_losses(now, run_ep, owner_ep, period, misses, runtime)
        {
            self.queue
                .schedule(t, Event::SpuriousRunFailure { job, epoch });
        }
        // Owner -> run node acks: the run node spuriously detects an owner
        // failure and installs a replacement through the overlay. In lease
        // mode the owner's liveness is judged solely by its renewals — a
        // partitioned owner loses the lease instead of being replaced by
        // its run node, so the spurious owner path is never scheduled.
        if self.cfg.leases_enabled() {
            return;
        }
        if let Some(t) = self
            .net
            .first_consecutive_losses(now, owner_ep, run_ep, period, misses, runtime)
        {
            self.queue
                .schedule(t, Event::SpuriousOwnerFailure { job, epoch });
        }
    }

    /// Figure 1, step 6: completion; results return to the client.
    fn handle_complete(&mut self, now: SimTime, job: JobId, epoch: u32, node: GridNodeId) {
        if !self.nodes.is_alive(node) {
            return;
        }
        if !self.epoch_valid(job, epoch) {
            // A duplicate execution (spurious run-failure recovery) finished
            // under a superseded epoch: free the node, grant no job credit.
            // With the checker's backdoor set, fall through instead — while
            // the node still holds the stale execution — and double-commit
            // the result (see `EngineConfig::check_disable_epoch_dedup`).
            let held = self
                .nodes
                .get(node)
                .running_job()
                .is_some_and(|q| q.job == job && q.epoch == epoch);
            if !(self.cfg.check_disable_epoch_dedup && held) {
                self.release_stale_execution(now, job, epoch, node, true);
                return;
            }
        }
        // Figure 1 step 6: return results directly, or publish a pointer in
        // the DHT and let the client resolve it (Section 2's by-reference
        // option).
        let result_delay = if self.cfg.return_results_by_reference {
            let result_guid = rng::splitmix64(self.guid_of(job, u32::MAX));
            let publish = self
                .mm
                .resolve_guid(&self.nodes, result_guid, &mut self.rng_mm)
                .unwrap_or(0);
            let fetch = self
                .mm
                .resolve_guid(&self.nodes, result_guid, &mut self.rng_mm)
                .unwrap_or(0);
            self.absorb_lookup_retries();
            self.report.result_hops.push(f64::from(publish + fetch));
            self.deliver_with_retries(now, Endpoint::Node(node.0), Endpoint::External, publish)
                + self.deliver_with_retries(now, Endpoint::External, Endpoint::External, fetch + 1)
        } else {
            // direct result transfer
            self.deliver_with_retries(now, Endpoint::Node(node.0), Endpoint::External, 1)
        };
        let finished = now + result_delay;
        {
            let done = self
                .nodes
                .take_running(node)
                .expect("completion of running job");
            debug_assert_eq!(done.job, job);
            let n = self.nodes.get_mut(node);
            n.busy_secs += done.runtime_secs;
            n.completed_jobs += 1;
        }
        let Some(rec) = self.job_mut(job) else {
            self.start_next_on(now, node);
            return;
        };
        // Only one completion per epoch exists and stale epochs were
        // rejected above, so the job can never already be terminal here —
        // except when the checker's dedup backdoor lets a stale completion
        // fall through after the current epoch already committed. Guard the
        // in-flight counter so that broken run still terminates and the
        // trace oracles (not an underflow panic) report the double commit.
        let was_terminal = rec.state.is_terminal();
        rec.state = JobState::Completed;
        rec.finished_at = Some(finished);
        let queued_at = rec.queued_at;
        let client = rec.profile.client;
        let wait = rec.wait_secs();
        let turnaround = rec.turnaround_secs();
        if let Some(q) = queued_at {
            let held = now.since(q).as_secs_f64();
            self.report.heartbeat_messages += (held / self.cfg.heartbeat_secs).ceil() as u64;
        }
        self.report.jobs_completed += 1;
        if let Some(w) = wait {
            self.report.wait_time.push(w);
            self.report
                .client_waits
                .entry(client.0)
                .or_default()
                .push(w);
        }
        if let Some(t) = turnaround {
            self.report.turnaround.push(t);
        }
        if !was_terminal {
            self.outstanding -= 1;
        }
        self.emit(
            now,
            TraceEvent::Completed {
                job,
                results_at: finished,
            },
        );
        self.detach_owner(job);
        self.release_dependents(now, job);
        self.start_next_on(now, node);
    }

    /// Section 5 dependencies: the parent's results are now available, so
    /// each child with no remaining unmet parents is submitted (at its
    /// nominal arrival time if that is still in the future).
    fn release_dependents(&mut self, now: SimTime, parent: JobId) {
        // Take ownership instead of cloning: a parent releases its children
        // at most once (later completions of the same job are superseded
        // epochs that never reach here, and a re-run's release finds the
        // children entry already gone). Bookkeeping goes through
        // `jobs.get_mut` directly, not `job_mut`: a child zeroed by a failure
        // cascade is ordinary, not an unknown-job invariant breach.
        let Some(children) = self.dag_children.remove(&parent) else {
            return;
        };
        for child in children {
            let Some(rec) = self.jobs.get_mut(child) else {
                continue;
            };
            if rec.unmet_parents == 0 {
                continue;
            }
            rec.unmet_parents -= 1;
            if rec.unmet_parents == 0 {
                let arrival = rec.held_arrival.take().unwrap_or(now);
                self.queue
                    .schedule(arrival.max(now), Event::Submit { job: child });
            }
        }
    }

    fn handle_sandbox_kill(&mut self, now: SimTime, job: JobId, epoch: u32, node: GridNodeId) {
        if !self.nodes.is_alive(node) {
            return;
        }
        if !self.epoch_valid(job, epoch) {
            // A duplicate execution was sandbox-killed after its epoch was
            // superseded: just free the node.
            self.release_stale_execution(now, job, epoch, node, false);
            return;
        }
        {
            let finish_at = self.nodes.get(node).running_finish_at();
            let killed = self.nodes.take_running(node).expect("kill of running job");
            debug_assert_eq!(killed.job, job);
            // The node did burn the time up to the kill: the job's full
            // runtime minus whatever would have remained past `now`.
            let remaining = finish_at.since(now).as_secs_f64();
            self.nodes.get_mut(node).busy_secs += (killed.runtime_secs - remaining).max(0.0);
        }
        self.report.sandbox_kills += 1;
        self.fail_job(job, FailureReason::SandboxKilled, now);
        self.start_next_on(now, node);
    }

    /// A completion or kill arrived for a superseded epoch while the node is
    /// alive and still holds the job: the spurious-detection path re-ran the
    /// job elsewhere, and this is the duplicate execution winding down.
    /// Release the node, crediting the time it burned, without granting job
    /// credit — the at-least-once analogue of discarding a duplicate result.
    fn release_stale_execution(
        &mut self,
        now: SimTime,
        job: JobId,
        epoch: u32,
        node: GridNodeId,
        ran_to_completion: bool,
    ) {
        // Match on (job, epoch), not job alone: after a crash + rejoin the
        // node may be re-running the same job under its current epoch, and
        // the pre-crash execution's completion must not steal that slot.
        let held = self
            .nodes
            .get(node)
            .running_job()
            .is_some_and(|q| q.job == job && q.epoch == epoch);
        if !held {
            return;
        }
        let finish_at = self.nodes.get(node).running_finish_at();
        let stale = self.nodes.take_running(node).expect("checked above");
        let credit = if ran_to_completion {
            stale.runtime_secs
        } else {
            let remaining = finish_at.since(now).as_secs_f64();
            (stale.runtime_secs - remaining).max(0.0)
        };
        self.nodes.get_mut(node).busy_secs += credit;
        self.report.duplicate_executions += 1;
        self.start_next_on(now, node);
    }

    fn start_next_on(&mut self, now: SimTime, node: GridNodeId) {
        let next = self.nodes.pop_queue(node);
        if let Some(q) = next {
            // Skip jobs that terminated while queued (e.g. sandbox-failed).
            if self.jobs.get(q.job).is_none_or(|r| r.state.is_terminal()) {
                self.start_next_on(now, node);
            } else {
                self.start_job(now, q.job, node, q.runtime_secs);
            }
        }
    }

    // ------------------------------------------------------------------
    // Failure handling (Section 2's recovery protocol)
    // ------------------------------------------------------------------

    fn handle_node_depart(&mut self, now: SimTime, node: GridNodeId, graceful: bool) {
        if !self.nodes.is_alive(node) {
            return;
        }
        if graceful {
            self.report.graceful_leaves += 1;
        } else {
            self.report.node_failures += 1;
        }
        self.emit(now, TraceEvent::NodeDown { node, graceful });

        // Victim jobs held by the node (running + queued), gathered before
        // the table clears them.
        let victims: Vec<JobId> = {
            let n = self.nodes.get(node);
            n.running_job()
                .map(|q| q.job)
                .into_iter()
                .chain(n.queued_jobs())
                .collect()
        };
        // Iterated directly below (ascending JobId) — no intermediate Vec.
        let owned: BTreeSet<JobId> = self.owner_jobs.remove(&node).unwrap_or_default();

        self.nodes.mark_failed(node);
        self.mm.on_leave(&self.nodes, node, graceful);

        // A graceful departure notifies its partners directly (one message)
        // instead of being discovered by missed heartbeats; if that goodbye
        // is lost, discovery falls back to the heartbeat timeout.
        let detect = if graceful {
            match self.send_message(now, Endpoint::Node(node.0), Endpoint::External, 1) {
                Delivery::Delivered(d) => d,
                _ => self.cfg.detection_delay(),
            }
        } else {
            self.cfg.detection_delay()
        };
        for job in victims {
            let Some(rec) = self.job_mut(job) else {
                continue;
            };
            if rec.state.is_terminal() {
                continue;
            }
            rec.state = JobState::Recovering;
            rec.run_node = None;
            rec.invalidate();
            let epoch = rec.epoch;
            let owner = rec.owner;
            let owner_alive = match owner {
                Some(OwnerRef::Server) => true,
                Some(OwnerRef::Peer(p)) => p != node && self.nodes.is_alive(p),
                None => false,
            };
            if owner_alive {
                self.queue
                    .schedule(now + detect, Event::RunFailureDetected { job, epoch });
            } else if !self.cfg.leases_enabled() {
                self.schedule_client_resubmit(now, job, epoch);
            }
            // In lease mode a dead (or already detached) owner's pending
            // lease expiry transfers ownership and rematches the job — the
            // client is never involved in owner-death recovery.
        }

        for job in owned {
            let Some(rec) = self.job_mut(job) else {
                continue;
            };
            if rec.state.is_terminal() {
                continue;
            }
            // The job keeps running/queued elsewhere; do NOT invalidate.
            let epoch = rec.epoch;
            let run_node = rec.run_node;
            let state = rec.state;
            if self.cfg.leases_enabled() {
                // The dead owner stops renewing, so its lease will run out
                // `ttl + grace` after the last renewal and transfer. Detach
                // ownership now: if the node rejoins before the expiry
                // fires, it must not resume renewing a lease it lost.
                if let Some(rec) = self.job_mut(job) {
                    rec.owner = None;
                }
                continue;
            }
            match run_node {
                Some(run) if self.nodes.is_alive(run) => {
                    self.queue
                        .schedule(now + detect, Event::OwnerFailureDetected { job, epoch });
                }
                // Run node dead too (or none): the victim path above, or a
                // pending matching event, already covers this job; if it was
                // purely owner-held (matching in progress), resubmit.
                Some(_) => {} // handled via the victim path
                None => {
                    if state == JobState::Matching {
                        let Some(rec) = self.job_mut(job) else {
                            continue;
                        };
                        rec.state = JobState::Recovering;
                        rec.invalidate();
                        let epoch = rec.epoch;
                        self.schedule_client_resubmit(now, job, epoch);
                    }
                }
            }
        }

        if let Some(repair) = self.churn.rejoin_after_secs {
            self.queue.schedule(
                now + SimDuration::from_secs_f64(repair),
                Event::NodeRejoin { node },
            );
        }
    }

    fn begin_run_failure_recovery(&mut self, now: SimTime, job: JobId) {
        let Some(rec) = self.job_mut(job) else { return };
        rec.state = JobState::Recovering;
        rec.run_node = None;
        rec.invalidate();
        let epoch = rec.epoch;
        let owner = rec.owner;
        let owner_alive = match owner {
            Some(OwnerRef::Server) => true,
            Some(OwnerRef::Peer(p)) => self.nodes.is_alive(p),
            None => false,
        };
        if owner_alive {
            let detect = self.cfg.detection_delay();
            self.queue
                .schedule(now + detect, Event::RunFailureDetected { job, epoch });
        } else if !self.cfg.leases_enabled() {
            self.schedule_client_resubmit(now, job, epoch);
        }
        // Lease mode: the dead owner's lease expiry transfers the job.
    }

    fn handle_run_failure_detected(&mut self, now: SimTime, job: JobId, epoch: u32) {
        if !self.epoch_valid(job, epoch) {
            return;
        }
        let Some(rec) = self.job_ref(job) else { return };
        let owner = rec.owner;
        let epoch = rec.epoch;
        let owner_alive = match owner {
            Some(OwnerRef::Server) => true,
            Some(OwnerRef::Peer(p)) => self.nodes.is_alive(p),
            None => false,
        };
        if !owner_alive {
            // Owner died during the detection window: dual failure — unless
            // leases are on, in which case the expiry transfers the job.
            if !self.cfg.leases_enabled() {
                self.schedule_client_resubmit(now, job, epoch);
            }
            return;
        }
        self.report.run_recoveries += 1;
        self.emit(now, TraceEvent::RunRecovery { job });
        let Some(rec) = self.job_mut(job) else { return };
        rec.match_attempts = 0; // fresh matchmaking round
        rec.rpc_attempts = 0;
        self.try_match(now, job);
    }

    /// Heartbeat loss made the owner falsely declare the (alive) run node
    /// dead. The recovery protocol runs exactly as for a real failure: the
    /// epoch is bumped and the job rematched — while the old node keeps
    /// executing a now-duplicate copy that the stale epoch will discard.
    fn handle_spurious_run_failure(&mut self, now: SimTime, job: JobId, epoch: u32) {
        if !self.epoch_valid(job, epoch) {
            return;
        }
        let Some(rec) = self.job_ref(job) else { return };
        // Spurious means both sides are in fact alive; a real failure in the
        // meantime is handled by the real detection path.
        let run_node = rec.run_node;
        let owner = rec.owner;
        let run_alive = run_node.is_some_and(|r| self.nodes.is_alive(r));
        let owner_alive = match owner {
            Some(OwnerRef::Server) => true,
            Some(OwnerRef::Peer(p)) => self.nodes.is_alive(p),
            None => false,
        };
        if !run_alive || !owner_alive {
            return;
        }
        self.report.spurious_detections += 1;
        self.report.run_recoveries += 1;
        self.emit(now, TraceEvent::RunRecovery { job });
        let Some(rec) = self.job_mut(job) else { return };
        rec.state = JobState::Recovering;
        rec.run_node = None;
        rec.invalidate();
        rec.match_attempts = 0;
        rec.rpc_attempts = 0;
        self.try_match(now, job);
    }

    /// Ack loss made the run node falsely declare the (alive) owner dead:
    /// it installs a replacement owner through the overlay. The execution is
    /// undisturbed, so the epoch is *not* bumped.
    fn handle_spurious_owner_failure(&mut self, now: SimTime, job: JobId, epoch: u32) {
        if !self.epoch_valid(job, epoch) {
            return;
        }
        let Some(rec) = self.job_ref(job) else { return };
        let run_node = rec.run_node;
        let owner = rec.owner;
        let resubmits = rec.resubmits;
        let profile = rec.profile;
        let run_alive = run_node.is_some_and(|r| self.nodes.is_alive(r));
        let owner_alive = match owner {
            Some(OwnerRef::Server) => true,
            Some(OwnerRef::Peer(p)) => self.nodes.is_alive(p),
            None => false,
        };
        if !run_alive || !owner_alive {
            return;
        }
        self.report.spurious_detections += 1;
        let guid = self.guid_of(job, resubmits);
        let reassigned = self
            .mm
            .reassign_owner(&self.nodes, &profile, guid, &mut self.rng_mm);
        self.absorb_lookup_retries();
        // On `None` the overlay cannot name a replacement; since the old
        // owner is in fact alive, dropping the spurious detection is safe.
        if let Some((new_owner, hops)) = reassigned {
            // The replacement lookup pays overlay routing like the initial
            // assignment did; count it in the same owner_hops series so the
            // T-overhead message totals cover recovery traffic too.
            self.report.owner_hops.push(f64::from(hops));
            self.report.owner_recoveries += 1;
            self.emit(now, TraceEvent::OwnerRecovery { job });
            self.detach_owner(job);
            let Some(rec) = self.job_mut(job) else { return };
            rec.owner = Some(new_owner);
            if let OwnerRef::Peer(p) = new_owner {
                self.owner_jobs.entry(p).or_default().insert(job);
            }
        }
    }

    fn handle_owner_failure_detected(&mut self, now: SimTime, job: JobId, epoch: u32) {
        if !self.epoch_valid(job, epoch) {
            return;
        }
        let Some(rec) = self.job_ref(job) else { return };
        let run_node = rec.run_node;
        let resubmits = rec.resubmits;
        let profile = rec.profile;
        let run_alive = run_node.is_some_and(|r| self.nodes.is_alive(r));
        if !run_alive {
            // Both sides gone: the run-failure path or resubmission handles
            // it; nothing for the (dead) run node to do.
            return;
        }
        let guid = self.guid_of(job, resubmits);
        let reassigned = self
            .mm
            .reassign_owner(&self.nodes, &profile, guid, &mut self.rng_mm);
        self.absorb_lookup_retries();
        match reassigned {
            Some((new_owner, hops)) => {
                self.report.owner_hops.push(f64::from(hops));
                self.report.owner_recoveries += 1;
                self.emit(now, TraceEvent::OwnerRecovery { job });
                let Some(rec) = self.job_mut(job) else { return };
                rec.owner = Some(new_owner);
                if let OwnerRef::Peer(p) = new_owner {
                    self.owner_jobs.entry(p).or_default().insert(job);
                }
            }
            None => {
                // Overlay cannot name an owner right now; retry shortly.
                self.queue.schedule(
                    now + SimDuration::from_secs_f64(self.cfg.match_retry_secs),
                    Event::OwnerFailureDetected { job, epoch },
                );
            }
        }
    }

    fn schedule_client_resubmit(&mut self, now: SimTime, job: JobId, epoch: u32) {
        // `now` is the caller's event time — equal to the queue clock in the
        // sequential kernel, ahead of it at the windowed kernel's barrier.
        self.queue.schedule(
            now + self.cfg.client_resubmit_delay(),
            Event::ClientResubmit { job, epoch },
        );
    }

    fn handle_client_resubmit(&mut self, now: SimTime, job: JobId, epoch: u32) {
        if !self.epoch_valid(job, epoch) {
            return;
        }
        self.report.client_resubmits += 1;
        let Some(rec) = self.job_mut(job) else { return };
        rec.resubmits += 1;
        let resubmits = rec.resubmits;
        if resubmits > self.cfg.max_resubmits {
            self.fail_job(job, FailureReason::ResubmitsExhausted, now);
        } else {
            self.handle_submit(now, job);
        }
    }

    fn handle_node_rejoin(&mut self, now: SimTime, node: GridNodeId) {
        if self.nodes.is_alive(node) {
            return;
        }
        self.nodes.mark_rejoined(node);
        self.emit(now, TraceEvent::NodeUp { node });
        self.mm.on_join(&self.nodes, node, &mut self.rng_mm);
        if let Some(mttf) = self.churn.mttf_secs {
            let dt = SimDuration::from_secs_f64(rng::sample_exp(&mut self.rng_fail, mttf));
            let ev = if self.rng_fail.gen_bool(self.churn.graceful_fraction) {
                Event::NodeLeave { node }
            } else {
                Event::NodeFail { node }
            };
            self.queue.schedule(now + dt, ev);
        }
    }

    // ------------------------------------------------------------------
    // Termination helpers
    // ------------------------------------------------------------------

    fn fail_job(&mut self, job: JobId, reason: FailureReason, now: SimTime) {
        {
            let Some(rec) = self.job_mut(job) else { return };
            if rec.state.is_terminal() {
                return;
            }
            rec.state = JobState::Failed;
            rec.failure = Some(reason);
            rec.finished_at = Some(now);
            rec.lease = None;
            rec.invalidate();
        }
        self.report.jobs_failed += 1;
        self.outstanding -= 1;
        self.emit(now, TraceEvent::Failed { job });
        self.detach_owner(job);
        if self.dag.is_empty() {
            // The paper's base model: no dependencies, nothing to cascade.
            // Skips rebuilding the children index on every failure.
            return;
        }
        // Descendants can never obtain this job's output: cascade.
        for d in self.dag.descendants_of(job) {
            let Some(rec) = self.job_mut(d) else { continue };
            if rec.state.is_terminal() {
                continue;
            }
            rec.state = JobState::Failed;
            rec.failure = Some(FailureReason::DependencyFailed);
            rec.finished_at = Some(now);
            rec.lease = None;
            rec.invalidate();
            // The descendant will never be released: clear its hold state so
            // a later parent completion cannot resurrect it.
            rec.unmet_parents = 0;
            rec.held_arrival = None;
            self.report.jobs_failed += 1;
            self.report.dependency_failures += 1;
            self.outstanding -= 1;
            self.emit(now, TraceEvent::Failed { job: d });
            self.detach_owner(d);
        }
    }

    fn detach_owner(&mut self, job: JobId) {
        let Some(rec) = self.jobs.get(job) else {
            return;
        };
        if let Some(OwnerRef::Peer(p)) = rec.owner {
            if let Some(set) = self.owner_jobs.get_mut(&p) {
                set.remove(&job);
            }
        }
    }
}
