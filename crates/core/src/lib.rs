//! # dgrid-core — the P2P desktop-grid engine
//!
//! This crate is the paper's primary contribution: a decentralized job
//! submission and execution system over P2P services (Section 2, Figure 1).
//! It simulates, event by event, the six-step lifecycle:
//!
//! 1. a client inserts a job at an **injection node**;
//! 2. the injection node assigns the job a GUID and routes it to its
//!    **owner node** through the overlay;
//! 3. the owner runs the **matchmaking** mechanism to find a capable
//!    **run node**;
//! 4. the owner sends the job to the run node;
//! 5. the run node queues the job (FIFO, one at a time) and, while it holds
//!    the job, keeps a heartbeat to the owner over a direct connection;
//! 6. on completion, results return to the client.
//!
//! Robustness comes from the **owner/run-node pair**: the job profile is
//! replicated on both, each monitors the other via heartbeats, and either
//! one can drive recovery when the other fails. Only if *both* fail before
//! recovery completes must the client resubmit — all three paths are
//! implemented in [`Engine`] and measured in the `T-robust` experiment.
//! A deterministic fault-injection layer ([`FaultPlan`], re-exported from
//! `dgrid-sim`) drops messages, partitions the network, and spikes latency,
//! driving the same recovery protocol — spurious detections, retry with
//! backoff, duplicate-execution suppression — without any node failing.
//!
//! Matchmaking is pluggable via the [`Matchmaker`] trait, with the paper's
//! three schemes provided:
//!
//! * [`RnTreeMatchmaker`] — Rendezvous-Node-Tree search over a pluggable
//!   [`KeyRouter`](router::KeyRouter) substrate (Chord by default, with
//!   Pastry and Tapestry variants) with a limited random walk for initial
//!   owner placement and extended search to `k` candidates (Section 3.1);
//! * [`CanMatchmaker`] — CAN coordinate-space routing with the virtual
//!   dimension, dominance-based candidate sets, stale neighbor load
//!   exchange, and the "improved" load-pushing extension (Section 3.2-3.3);
//! * [`CentralizedMatchmaker`] — the omniscient baseline the paper uses as
//!   its load-balance target ("a centralized scheme that uses knowledge of
//!   the status of all nodes and jobs").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analytics;
pub mod arena;
mod config;
mod dag;
mod engine;
mod job;
mod match_can;
mod match_central;
mod match_pubsub;
mod match_rntree;
mod matchmaker;
mod metrics;
mod node;
pub mod router;
mod security;
mod span;
pub mod trace;

pub use analytics::{AnalyticsSnapshot, SketchStats, StreamAnalytics, WINDOW_COUNTER_ARITY};
pub use arena::{Arena, ArenaIdx, JobIdx, NodeIdx};
pub use config::{ChurnConfig, EngineConfig, PlacementPolicy};
pub use dag::JobDag;
pub use dgrid_sim::fault::{Delivery, Endpoint, FaultPlan, LatencySpike, NodeCrash, Partition};
pub use engine::{AvailabilityEvent, Engine, JobSubmission};
pub use job::{JobState, OwnerRef};
pub use match_can::{CanMatchmaker, CanMmConfig};
pub use match_central::CentralizedMatchmaker;
pub use match_pubsub::PubSubMatchmaker;
pub use match_rntree::{RnTreeConfig, RnTreeMatchmaker};
pub use matchmaker::{MatchOutcome, Matchmaker};
pub use metrics::SimReport;
pub use node::{GridNode, GridNodeId, NodeTable};
pub use security::SandboxPolicy;
pub use span::{phase_samples, JobSpan, Phase, SpanAssembler, SpanOutcome};
pub use trace::binary::{
    binary_to_jsonl, decode_stream, encode_events, jsonl_to_binary, sniff_format, BinaryEncoder,
    BinaryObserver, StreamDecoder, StreamError, StreamFormat,
};
pub use trace::{
    parse_jsonl_line, EventKind, EventRecord, JsonlObserver, NullObserver, Observer, TraceEvent,
    VecObserver,
};
