//! Adversarial-input property tests on both event-stream parsers: for
//! arbitrary, truncated, and bit-flipped input, `parse_jsonl_line` and the
//! binary decoder must return typed errors — never panic — and the binary
//! codec must round-trip *arbitrary* record sequences (non-monotonic
//! timestamps, sparse ids) byte-exactly.

use dgrid_core::{
    decode_stream, encode_events, parse_jsonl_line, EventRecord, GridNodeId, OwnerRef,
    StreamDecoder, TraceEvent,
};
use dgrid_resources::JobId;
use dgrid_sim::SimTime;
use proptest::prelude::*;

/// Arbitrary trace events, including ids past the dense-interning cap so
/// the encoder's sparse fallback is exercised.
fn arb_event() -> impl Strategy<Value = TraceEvent> {
    let job = (0u64..u64::MAX).prop_map(JobId);
    let node = (0u32..u32::MAX).prop_map(GridNodeId);
    (
        job,
        node,
        any::<u64>(),
        any::<u32>(),
        any::<bool>(),
        0u8..12,
    )
        .prop_map(|(job, node, t, small, flag, kind)| match kind {
            0 => TraceEvent::Submitted {
                job,
                resubmits: small,
            },
            1 => TraceEvent::OwnerAssigned {
                job,
                owner: if flag {
                    OwnerRef::Server
                } else {
                    OwnerRef::Peer(node)
                },
            },
            2 => TraceEvent::Matched {
                job,
                run_node: node,
                hops: small,
            },
            3 => TraceEvent::Started {
                job,
                run_node: node,
            },
            4 => TraceEvent::Completed {
                job,
                results_at: SimTime::from_nanos(t),
            },
            5 => TraceEvent::Failed { job },
            6 => TraceEvent::NodeDown {
                node,
                graceful: flag,
            },
            7 => TraceEvent::NodeUp { node },
            8 => TraceEvent::RunRecovery { job },
            9 => TraceEvent::OwnerRecovery { job },
            10 => TraceEvent::LeaseExpired { job },
            _ => TraceEvent::LeaseTransferred { job, owner: node },
        })
}

fn arb_records() -> impl Strategy<Value = Vec<EventRecord>> {
    proptest::collection::vec(
        (any::<u64>(), arb_event()).prop_map(|(t_ns, event)| EventRecord { t_ns, event }),
        0..40,
    )
}

/// A deeply nested JSON line must come back as a typed error — the vendored
/// parser's recursion is depth-limited, so hostile nesting cannot blow the
/// stack out from under `dgrid report` or `dgrid watch`.
#[test]
fn hostile_jsonl_nesting_is_a_typed_error() {
    let deep = format!("{{\"t_ns\":0,\"event\":{}", "[".repeat(100_000));
    assert!(matches!(
        parse_jsonl_line(&deep),
        Err(dgrid_core::StreamError::Json { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The JSONL parser returns `Ok` or a typed error on any input; it
    /// must never panic, whatever the bytes.
    #[test]
    fn jsonl_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = parse_jsonl_line(&line);
    }

    /// Truncating a *valid* JSONL line at any byte yields `Ok(None)` (blank)
    /// or a typed error — and parsing the whole line round-trips.
    #[test]
    fn truncated_jsonl_lines_error_cleanly(rec in (any::<u64>(), arb_event()), cut in 0usize..200) {
        let records = [EventRecord { t_ns: rec.0, event: rec.1 }];
        let jsonl = dgrid_core::binary_to_jsonl(&encode_events(&records)).unwrap();
        let line = jsonl.trim_end();
        prop_assert_eq!(parse_jsonl_line(line).unwrap(), Some(records[0]));
        let cut = cut.min(line.len());
        if line.is_char_boundary(cut) && cut < line.len() {
            // Whatever comes back, it must come back (no panic) and a
            // strict prefix must never silently parse as the full record.
            if let Ok(Some(parsed)) = parse_jsonl_line(&line[..cut]) {
                prop_assert_ne!(parsed, records[0]);
            }
        }
    }

    /// The binary decoder returns `Ok` or a typed error on arbitrary bytes.
    #[test]
    fn binary_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_stream(&bytes);
    }

    /// Arbitrary record sequences — backwards time, duplicate ids, ids past
    /// the dense-interning cap — encode and decode losslessly, and the
    /// re-encoding is byte-identical (canonical form).
    #[test]
    fn binary_codec_round_trips_arbitrary_records(records in arb_records()) {
        let bytes = encode_events(&records);
        let decoded = decode_stream(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &records);
        prop_assert_eq!(encode_events(&decoded), bytes);
    }

    /// Truncating a valid binary stream at any byte either errors (typed)
    /// or yields a strict prefix of the original records; `finish()` flags
    /// a mid-frame cut as `Truncated`.
    #[test]
    fn truncated_binary_streams_error_or_prefix(records in arb_records(), cut in 0usize..2000) {
        let bytes = encode_events(&records);
        let cut = cut.min(bytes.len());
        // A typed error is the expected outcome mid-frame; on success the
        // decoding must be a strict prefix of what was encoded.
        if let Ok(decoded) = decode_stream(&bytes[..cut]) {
            prop_assert!(
                decoded.len() <= records.len() && decoded == records[..decoded.len()],
                "truncation must never invent or reorder records"
            );
        }
    }

    /// Flipping one bit of a valid stream never panics the decoder, and
    /// never makes it return *more* records than were encoded plus the
    /// corrupted tail (no unbounded amplification).
    #[test]
    fn bit_flipped_binary_streams_error_cleanly(records in arb_records(), pos in any::<usize>(), bit in 0u8..8) {
        let mut bytes = encode_events(&records);
        if bytes.is_empty() {
            return Ok(());
        }
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        let _ = decode_stream(&bytes);
    }

    /// Push-based decoding is split-invariant: feeding the stream in
    /// arbitrary chunks yields exactly the one-shot decoding.
    #[test]
    fn chunked_decoding_is_split_invariant(records in arb_records(), splits in proptest::collection::vec(any::<usize>(), 0..8)) {
        let bytes = encode_events(&records);
        let mut cuts: Vec<usize> = splits.iter().map(|&s| if bytes.is_empty() { 0 } else { s % (bytes.len() + 1) }).collect();
        cuts.push(0);
        cuts.push(bytes.len());
        cuts.sort_unstable();
        let mut dec = StreamDecoder::new();
        let mut decoded = Vec::new();
        for pair in cuts.windows(2) {
            dec.push(&bytes[pair[0]..pair[1]]);
            while let Some(rec) = dec.next_event().expect("valid stream decodes") {
                decoded.push(rec);
            }
        }
        dec.finish().expect("stream ends at a frame boundary");
        prop_assert_eq!(decoded, records);
    }
}
