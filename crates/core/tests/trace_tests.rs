//! Observer/trace tests: the emitted lifecycle stream is ordered, complete,
//! and per-job well-formed.

use std::cell::RefCell;
use std::rc::Rc;

use dgrid_core::{
    CentralizedMatchmaker, ChurnConfig, Engine, EngineConfig, JobSubmission, Observer,
    RnTreeMatchmaker, TraceEvent, VecObserver,
};
use dgrid_resources::{
    Capabilities, ClientId, JobId, JobProfile, JobRequirements, NodeProfile, OsType,
};
use dgrid_sim::SimTime;

/// Shares a `VecObserver` with the engine (which takes ownership).
struct SharedObserver(Rc<RefCell<VecObserver>>);

impl Observer for SharedObserver {
    fn on_event(&mut self, at: SimTime, event: TraceEvent) {
        self.0.borrow_mut().on_event(at, event);
    }
}

fn nodes(n: usize) -> Vec<NodeProfile> {
    (0..n)
        .map(|_| NodeProfile::new(Capabilities::new(2.0, 4.0, 100.0, OsType::Linux)))
        .collect()
}

fn jobs(n: usize) -> Vec<JobSubmission> {
    (0..n)
        .map(|i| JobSubmission {
            profile: JobProfile::new(
                JobId(i as u64),
                ClientId(0),
                JobRequirements::unconstrained(),
                30.0,
            ),
            arrival_secs: i as f64 * 2.0,
            actual_runtime_secs: None,
        })
        .collect()
}

fn traced_run(
    mm: Box<dyn dgrid_core::Matchmaker>,
    churn: ChurnConfig,
    seed: u64,
) -> (dgrid_core::SimReport, VecObserver) {
    let shared = Rc::new(RefCell::new(VecObserver::default()));
    let cfg = EngineConfig {
        seed,
        max_sim_secs: 1_000_000.0,
        ..EngineConfig::default()
    };
    let engine = Engine::new(cfg, churn, mm, nodes(20), jobs(60))
        .with_observer(Box::new(SharedObserver(shared.clone())));
    let report = engine.run();
    let events = std::mem::take(&mut *shared.borrow_mut());
    (report, events)
}

#[test]
fn events_are_time_ordered_and_complete() {
    let (report, trace) = traced_run(
        Box::new(CentralizedMatchmaker::new()),
        ChurnConfig::none(),
        1,
    );
    assert_eq!(report.jobs_completed, 60);

    let mut last = SimTime::ZERO;
    for (at, _) in &trace.events {
        assert!(*at >= last, "events must be emitted in virtual-time order");
        last = *at;
    }
    let count = |f: fn(&TraceEvent) -> bool| trace.events.iter().filter(|(_, e)| f(e)).count();
    assert_eq!(count(|e| matches!(e, TraceEvent::Submitted { .. })), 60);
    assert_eq!(count(|e| matches!(e, TraceEvent::Matched { .. })), 60);
    assert_eq!(count(|e| matches!(e, TraceEvent::Started { .. })), 60);
    assert_eq!(count(|e| matches!(e, TraceEvent::Completed { .. })), 60);
    assert_eq!(count(|e| matches!(e, TraceEvent::Failed { .. })), 0);
}

#[test]
fn per_job_lifecycle_is_well_formed() {
    let (_, trace) = traced_run(
        Box::new(RnTreeMatchmaker::with_defaults()),
        ChurnConfig::none(),
        2,
    );
    for j in 0..60u64 {
        let seq = trace.for_job(JobId(j));
        // submitted → owner → matched → started → completed, exactly once
        // each in the failure-free run.
        assert!(
            matches!(seq[0], TraceEvent::Submitted { .. }),
            "job {j}: first event {:?}",
            seq[0]
        );
        assert!(
            matches!(seq[1], TraceEvent::OwnerAssigned { .. }),
            "job {j}"
        );
        assert!(matches!(seq[2], TraceEvent::Matched { .. }), "job {j}");
        assert!(matches!(seq[3], TraceEvent::Started { .. }), "job {j}");
        assert!(matches!(seq[4], TraceEvent::Completed { .. }), "job {j}");
        assert_eq!(seq.len(), 5, "job {j}: no extra events in a clean run");
    }
}

#[test]
fn matched_and_started_agree_on_the_run_node() {
    let (_, trace) = traced_run(
        Box::new(RnTreeMatchmaker::with_defaults()),
        ChurnConfig::none(),
        3,
    );
    for j in 0..60u64 {
        let seq = trace.for_job(JobId(j));
        let matched = seq.iter().find_map(|e| match e {
            TraceEvent::Matched { run_node, .. } => Some(*run_node),
            _ => None,
        });
        let started = seq.iter().find_map(|e| match e {
            TraceEvent::Started { run_node, .. } => Some(*run_node),
            _ => None,
        });
        assert_eq!(matched, started, "job {j} must start where it was matched");
    }
}

#[test]
fn churn_produces_node_and_recovery_events() {
    // Short lifetimes and fast repair so both directions of churn land
    // inside the ~150 s makespan.
    let churn = ChurnConfig {
        mttf_secs: Some(300.0),
        rejoin_after_secs: Some(50.0),
        graceful_fraction: 0.5,
    };
    let (report, trace) = traced_run(Box::new(CentralizedMatchmaker::new()), churn, 4);
    assert_eq!(report.jobs_completed + report.jobs_failed, 60);

    let downs = trace
        .events
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::NodeDown { .. }))
        .count() as u64;
    let ups = trace
        .events
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::NodeUp { .. }))
        .count();
    assert_eq!(downs, report.node_failures + report.graceful_leaves);
    assert!(ups > 0, "repairs must rejoin");

    let recoveries = trace
        .events
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::RunRecovery { .. }))
        .count() as u64;
    assert_eq!(recoveries, report.run_recoveries, "trace matches report");
}

#[test]
fn default_engine_has_no_observer_overhead_path() {
    // Smoke check: running without an observer is unchanged behaviourally.
    let cfg = EngineConfig {
        seed: 5,
        ..EngineConfig::default()
    };
    let a = Engine::new(
        cfg,
        ChurnConfig::none(),
        Box::new(CentralizedMatchmaker::new()),
        nodes(10),
        jobs(30),
    )
    .run();
    let (b, _) = traced_run(
        Box::new(CentralizedMatchmaker::new()),
        ChurnConfig::none(),
        5,
    );
    // Not directly comparable (different node/job counts), but both clean.
    assert_eq!(a.jobs_completed, 30);
    assert_eq!(b.jobs_completed, 60);
}
