//! Property tests on the engine: for arbitrary workloads, churn schedules,
//! and dependency graphs, the simulation never panics, conserves jobs, and
//! keeps its invariants.

use dgrid_core::{
    CanMatchmaker, CentralizedMatchmaker, ChurnConfig, Engine, EngineConfig, JobDag, JobSubmission,
    Matchmaker, PlacementPolicy, RnTreeMatchmaker,
};
use dgrid_resources::{
    Capabilities, ClientId, JobId, JobProfile, JobRequirements, NodeProfile, OsType, ResourceKind,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct ArbJob {
    cpu_min: Option<f64>,
    mem_min: Option<f64>,
    runtime: f64,
    arrival: f64,
}

fn arb_job() -> impl Strategy<Value = ArbJob> {
    (
        proptest::option::of(0.5f64..3.5),
        proptest::option::of(0.5f64..7.5),
        1.0f64..300.0,
        0.0f64..120.0,
    )
        .prop_map(|(cpu_min, mem_min, runtime, arrival)| ArbJob {
            cpu_min,
            mem_min,
            runtime,
            arrival,
        })
}

fn arb_node() -> impl Strategy<Value = (f64, f64, f64, u8)> {
    (0.5f64..4.0, 0.25f64..8.0, 10.0f64..500.0, 0u8..4)
}

fn build(nodes: &[(f64, f64, f64, u8)], jobs: &[ArbJob]) -> (Vec<NodeProfile>, Vec<JobSubmission>) {
    let profiles: Vec<NodeProfile> = nodes
        .iter()
        .map(|&(c, m, d, os)| {
            NodeProfile::new(Capabilities::new(c, m, d, OsType::ALL[os as usize]))
        })
        .collect();
    let submissions: Vec<JobSubmission> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| {
            let mut req = JobRequirements::unconstrained();
            if let Some(c) = j.cpu_min {
                req = req.with_min(ResourceKind::CpuSpeed, c);
            }
            if let Some(m) = j.mem_min {
                req = req.with_min(ResourceKind::Memory, m);
            }
            JobSubmission {
                profile: JobProfile::new(JobId(i as u64), ClientId((i % 4) as u32), req, j.runtime),
                arrival_secs: j.arrival,
                actual_runtime_secs: None,
            }
        })
        .collect();
    (profiles, submissions)
}

fn check_report(r: &dgrid_core::SimReport, total: u64, label: &str) {
    assert_eq!(
        r.jobs_completed + r.jobs_failed,
        total,
        "{label}: conservation"
    );
    assert_eq!(r.jobs_total, total);
    assert_eq!(
        r.wait_time.len() as u64,
        r.jobs_completed,
        "{label}: one wait per completion"
    );
    for &w in r.wait_time.samples() {
        assert!(w >= 0.0 && w.is_finite(), "{label}: wait {w}");
    }
    for &b in &r.node_busy_secs {
        assert!(b >= 0.0 && b.is_finite());
    }
    let client_total: u64 = r.client_waits.values().map(|s| s.count()).sum();
    assert_eq!(
        client_total, r.jobs_completed,
        "{label}: client stats cover completions"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary workloads (possibly unsatisfiable jobs) on every
    /// matchmaker: no panics, conservation, valid metrics.
    #[test]
    fn engine_conserves_jobs(
        nodes in proptest::collection::vec(arb_node(), 3..20),
        jobs in proptest::collection::vec(arb_job(), 1..40),
        seed in 0u64..1000,
    ) {
        let (profiles, submissions) = build(&nodes, &jobs);
        let total = submissions.len() as u64;
        for mm in [
            Box::new(CentralizedMatchmaker::new()) as Box<dyn Matchmaker>,
            Box::new(RnTreeMatchmaker::with_defaults()),
            Box::new(CanMatchmaker::with_defaults()),
        ] {
            let label = mm.name();
            let cfg = EngineConfig { seed, max_sim_secs: 500_000.0, ..EngineConfig::default() };
            let r = Engine::new(cfg, ChurnConfig::none(), mm, profiles.clone(), submissions.clone()).run();
            check_report(&r, total, label);
            // Completed jobs all had a capable node; failed ones either had
            // none or were horizon casualties.
            let capable = |req: &JobRequirements| {
                profiles.iter().any(|n| req.satisfied_by(&n.capabilities))
            };
            for s in &submissions {
                if !capable(&s.profile.requirements) {
                    // Unsatisfiable jobs must not be "completed".
                    prop_assert!(r.jobs_failed > 0);
                }
            }
        }
    }

    /// Arbitrary churn (random MTTF / repair) never loses or duplicates a
    /// job and never panics the overlay layers.
    #[test]
    fn engine_survives_arbitrary_churn(
        nodes in proptest::collection::vec(arb_node(), 4..16),
        jobs in proptest::collection::vec(arb_job(), 1..25),
        mttf in 200.0f64..20_000.0,
        repair in proptest::option::of(50.0f64..2_000.0),
        seed in 0u64..1000,
    ) {
        let (profiles, submissions) = build(&nodes, &jobs);
        let total = submissions.len() as u64;
        let churn = ChurnConfig {
            mttf_secs: Some(mttf),
            rejoin_after_secs: repair,
            graceful_fraction: 0.0,
        };
        let cfg = EngineConfig { seed, max_sim_secs: 500_000.0, ..EngineConfig::default() };
        let r = Engine::new(
            cfg,
            churn,
            Box::new(RnTreeMatchmaker::with_defaults()),
            profiles,
            submissions,
        )
        .run();
        check_report(&r, total, "rn-tree under churn");
    }

    /// Random chain/fan dependency graphs: ordering respected (makespan at
    /// least the critical path of the longest chain actually completed)
    /// and conservation holds.
    #[test]
    fn dag_chains_conserve(
        runtimes in proptest::collection::vec(1.0f64..100.0, 2..12),
        seed in 0u64..1000,
    ) {
        let jobs: Vec<JobSubmission> = runtimes
            .iter()
            .enumerate()
            .map(|(i, &rt)| JobSubmission {
                profile: JobProfile::new(
                    JobId(i as u64),
                    ClientId(0),
                    JobRequirements::unconstrained(),
                    rt,
                ),
                arrival_secs: 0.0,
                actual_runtime_secs: None,
            })
            .collect();
        let ids: Vec<JobId> = (0..runtimes.len() as u64).map(JobId).collect();
        let dag = JobDag::chain(&ids);
        let profiles = vec![
            NodeProfile::new(Capabilities::new(2.0, 4.0, 100.0, OsType::Linux));
            4
        ];
        let cfg = EngineConfig { seed, ..EngineConfig::default() };
        let r = Engine::with_dag(
            cfg,
            ChurnConfig::none(),
            Box::new(CentralizedMatchmaker::new()),
            profiles,
            jobs,
            dag,
        )
        .run();
        prop_assert_eq!(r.jobs_completed, runtimes.len() as u64);
        let critical_path: f64 = runtimes.iter().sum();
        prop_assert!(
            r.makespan_secs >= critical_path,
            "chain makespan {:.1} < critical path {:.1}",
            r.makespan_secs,
            critical_path
        );
    }

    /// `EngineConfig::validate` must reject any config whose client-resubmit
    /// timeout does not exceed the failure-detection delay: a client that
    /// races recovery would duplicate live jobs.
    #[test]
    fn validate_rejects_resubmit_not_beyond_detection(
        heartbeat in 1.0f64..200.0,
        misses in 1u32..10,
        slack in 0.0f64..1.0,
    ) {
        let cfg = EngineConfig {
            heartbeat_secs: heartbeat,
            heartbeat_misses: misses,
            // At most equal to the detection delay — never strictly beyond.
            client_resubmit_secs: heartbeat * f64::from(misses) * slack,
            ..EngineConfig::default()
        };
        let rejected =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cfg.validate())).is_err();
        prop_assert!(rejected, "resubmit ≤ detection delay must be rejected");
    }

    /// Non-positive backoff bounds, inverted cap/base pairs, and
    /// out-of-range jitter must all be rejected at validation time.
    #[test]
    fn validate_rejects_bad_backoff_configs(
        base in -50.0f64..50.0,
        cap in -50.0f64..200.0,
        jitter in -1.0f64..2.0,
        timeout in -10.0f64..60.0,
    ) {
        let cfg = EngineConfig {
            rpc_timeout_secs: timeout,
            backoff_base_secs: base,
            backoff_cap_secs: cap,
            backoff_jitter: jitter,
            ..EngineConfig::default()
        };
        let consistent = timeout > 0.0
            && base > 0.0
            && cap >= base
            && (0.0..=1.0).contains(&jitter);
        let accepted =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cfg.validate())).is_ok();
        prop_assert_eq!(
            accepted,
            consistent,
            "validate must accept exactly the consistent backoff configs"
        );
    }

    /// Lease knobs: `validate` must accept exactly the configs where the ttl
    /// strictly exceeds the renew interval (a lease that cannot outlive one
    /// renewal period expires while its owner is still healthy), the grace
    /// is finite and non-negative (zero grace is a legal edge: expiry fires
    /// the instant the ttl lapses), and a placement policy is present.
    #[test]
    fn validate_accepts_exactly_coherent_lease_knobs(
        ttl in 0.5f64..400.0,
        renew in 0.5f64..400.0,
        grace in proptest::option::of(0.0f64..120.0),
        placement_set in any::<bool>(),
    ) {
        let cfg = EngineConfig {
            lease_ttl_secs: Some(ttl),
            lease_renew_secs: renew,
            lease_grace_secs: grace.unwrap_or(0.0),
            placement: placement_set.then_some(PlacementPolicy::LoadAware),
            ..EngineConfig::default()
        };
        let consistent = ttl > renew && placement_set;
        let accepted =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cfg.validate())).is_ok();
        prop_assert_eq!(
            accepted,
            consistent,
            "validate must accept exactly ttl > renew with a placement policy \
             (ttl {ttl}, renew {renew}, grace {grace:?}, placement {placement_set})"
        );
    }

    /// With leases disabled (`lease_ttl_secs: None`), the lease knobs are
    /// inert: any leftover renew/grace/placement values — even incoherent
    /// ones — must not affect validation.
    #[test]
    fn validate_ignores_lease_knobs_when_disabled(
        renew in -50.0f64..400.0,
        grace in -50.0f64..400.0,
        placement_set in any::<bool>(),
    ) {
        let cfg = EngineConfig {
            lease_ttl_secs: None,
            lease_renew_secs: renew,
            lease_grace_secs: grace,
            placement: placement_set.then_some(PlacementPolicy::Hash),
            ..EngineConfig::default()
        };
        let accepted =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cfg.validate())).is_ok();
        prop_assert!(accepted, "disabled leases must not validate lease knobs");
    }

    /// An infinite ttl is the documented spelling for "a lease that never
    /// expires": it *disables* the subsystem (reassign-on-death, bit-exact),
    /// so — like `None` — it must validate no matter what the other lease
    /// knobs hold, placement included.
    #[test]
    fn validate_accepts_infinite_ttl_as_disabled(
        renew in -50.0f64..400.0,
        grace in -50.0f64..400.0,
        placement_set in any::<bool>(),
    ) {
        let cfg = EngineConfig {
            lease_ttl_secs: Some(f64::INFINITY),
            lease_renew_secs: renew,
            lease_grace_secs: grace,
            placement: placement_set.then_some(PlacementPolicy::Hash),
            ..EngineConfig::default()
        };
        prop_assert!(!cfg.leases_enabled(), "infinite ttl must disable leases");
        let accepted =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cfg.validate())).is_ok();
        prop_assert!(accepted, "infinite ttl must validate like disabled leases");
    }
}
