//! Edge-case engine tests: horizon expiry, resubmission exhaustion, empty
//! grids, runtime scaling, and mid-flight churn races.

use dgrid_core::{
    CentralizedMatchmaker, ChurnConfig, Engine, EngineConfig, JobSubmission, RnTreeMatchmaker,
};
use dgrid_resources::{
    Capabilities, ClientId, JobId, JobProfile, JobRequirements, NodeProfile, OsType,
};

fn node(cpu: f64) -> NodeProfile {
    NodeProfile::new(Capabilities::new(cpu, 4.0, 100.0, OsType::Linux))
}

fn job(id: u64, arrival: f64, runtime: f64) -> JobSubmission {
    JobSubmission {
        profile: JobProfile::new(
            JobId(id),
            ClientId(0),
            JobRequirements::unconstrained(),
            runtime,
        ),
        arrival_secs: arrival,
        actual_runtime_secs: None,
    }
}

#[test]
fn horizon_fails_unfinished_jobs_explicitly() {
    // One node, five 100 s jobs, but only 250 s of simulated time: the
    // queue tail must be failed at the horizon, not silently dropped.
    let cfg = EngineConfig {
        seed: 1,
        max_sim_secs: 250.0,
        ..EngineConfig::default()
    };
    let r = Engine::new(
        cfg,
        ChurnConfig::none(),
        Box::new(CentralizedMatchmaker::new()),
        vec![node(2.0)],
        (0..5).map(|i| job(i, 0.0, 100.0)).collect(),
    )
    .run();
    assert_eq!(
        r.jobs_completed + r.jobs_failed,
        5,
        "conservation at the horizon"
    );
    assert!(r.jobs_completed >= 1, "the head of the queue finishes");
    assert!(r.jobs_failed >= 2, "the tail is failed explicitly");
}

#[test]
fn permanent_grid_outage_exhausts_resubmits() {
    // The only node dies before the job arrives and never comes back: the
    // job must fail after max_resubmits, not loop forever.
    let cfg = EngineConfig {
        seed: 2,
        max_resubmits: 2,
        max_sim_secs: 1_000_000.0,
        ..EngineConfig::default()
    };
    let churn = ChurnConfig {
        mttf_secs: Some(0.001), // dies almost immediately
        rejoin_after_secs: None,
        graceful_fraction: 0.0,
    };
    let r = Engine::new(
        cfg,
        churn,
        Box::new(RnTreeMatchmaker::with_defaults()),
        vec![node(2.0), node(2.0)],
        vec![job(0, 10.0, 50.0)],
    )
    .run();
    assert_eq!(r.jobs_failed, 1);
    assert_eq!(r.jobs_completed, 0);
    assert!(r.client_resubmits >= 1, "the client kept trying first");
}

#[test]
fn runtime_scaling_by_cpu_speed() {
    // Same job on a 1 GHz node vs a 4 GHz node with scaling on: the fast
    // node finishes 4× sooner (reference 2 GHz ⇒ 2× vs 0.5× the declared).
    let run_on = |cpu: f64| {
        let cfg = EngineConfig {
            seed: 3,
            scale_runtime_by_cpu: true,
            reference_cpu_ghz: 2.0,
            ..EngineConfig::default()
        };
        Engine::new(
            cfg,
            ChurnConfig::none(),
            Box::new(CentralizedMatchmaker::new()),
            vec![node(cpu)],
            vec![job(0, 0.0, 100.0)],
        )
        .run()
    };
    let slow = run_on(1.0);
    let fast = run_on(4.0);
    assert_eq!(slow.jobs_completed, 1);
    assert_eq!(fast.jobs_completed, 1);
    // Turnaround ≈ runtime (no queueing): 200 s vs 50 s plus small latency.
    let t_slow = slow.turnaround.mean();
    let t_fast = fast.turnaround.mean();
    assert!(
        (195.0..215.0).contains(&t_slow),
        "slow node turnaround {t_slow:.1}"
    );
    assert!(
        (45.0..65.0).contains(&t_fast),
        "fast node turnaround {t_fast:.1}"
    );
}

#[test]
fn single_node_single_job_smoke() {
    let r = Engine::new(
        EngineConfig {
            seed: 4,
            ..EngineConfig::default()
        },
        ChurnConfig::none(),
        Box::new(RnTreeMatchmaker::with_defaults()),
        vec![node(2.0)],
        vec![job(0, 0.0, 10.0)],
    )
    .run();
    assert_eq!(r.jobs_completed, 1);
    assert_eq!(r.owner_hops.len(), 1);
    assert_eq!(r.match_hops.len(), 1);
}

#[test]
fn zero_jobs_is_a_clean_no_op() {
    let r = Engine::new(
        EngineConfig {
            seed: 5,
            ..EngineConfig::default()
        },
        ChurnConfig::none(),
        Box::new(CentralizedMatchmaker::new()),
        vec![node(2.0)],
        Vec::new(),
    )
    .run();
    assert_eq!(r.jobs_total, 0);
    assert_eq!(r.jobs_completed, 0);
    assert_eq!(r.completion_rate(), 1.0);
}

#[test]
fn late_arrivals_after_all_nodes_left_still_terminate() {
    // Every node departs gracefully at t=5; a job arrives at t=100. The
    // client retries and ultimately gives up — never a hang.
    use dgrid_core::{AvailabilityEvent, GridNodeId, JobDag};
    let schedule = vec![
        AvailabilityEvent {
            at_secs: 5.0,
            node: GridNodeId(0),
            up: false,
        },
        AvailabilityEvent {
            at_secs: 5.0,
            node: GridNodeId(1),
            up: false,
        },
    ];
    let cfg = EngineConfig {
        seed: 6,
        max_resubmits: 1,
        max_sim_secs: 100_000.0,
        ..EngineConfig::default()
    };
    let r = Engine::with_dag_and_schedule(
        cfg,
        ChurnConfig::none(),
        Box::new(RnTreeMatchmaker::with_defaults()),
        vec![node(2.0), node(2.0)],
        vec![job(0, 100.0, 10.0)],
        JobDag::none(),
        schedule,
    )
    .run();
    assert_eq!(r.jobs_completed + r.jobs_failed, 1);
    assert_eq!(r.jobs_failed, 1, "no capacity ever returns");
}

#[test]
fn duplicate_job_ids_rejected() {
    let result = std::panic::catch_unwind(|| {
        Engine::new(
            EngineConfig::default(),
            ChurnConfig::none(),
            Box::new(CentralizedMatchmaker::new()),
            vec![node(2.0)],
            vec![job(7, 0.0, 10.0), job(7, 1.0, 10.0)],
        )
    });
    assert!(
        result.is_err(),
        "duplicate job ids must panic at construction"
    );
}
