//! Graceful (announced) departures vs. abrupt failures.

use dgrid_core::{
    CentralizedMatchmaker, ChurnConfig, Engine, EngineConfig, JobSubmission, RnTreeMatchmaker,
};
use dgrid_resources::{
    Capabilities, ClientId, JobId, JobProfile, JobRequirements, NodeProfile, OsType,
};
use dgrid_sim::rng::{rng_for, sample_exp, streams};
use rand::Rng;

fn nodes(n: usize, seed: u64) -> Vec<NodeProfile> {
    let mut rng = rng_for(seed, streams::NODE_CAPS);
    (0..n)
        .map(|_| {
            NodeProfile::new(Capabilities::new(
                rng.gen_range(1.0..4.0),
                rng.gen_range(1.0..8.0),
                rng.gen_range(20.0..400.0),
                OsType::Linux,
            ))
        })
        .collect()
}

fn jobs(n: usize, seed: u64) -> Vec<JobSubmission> {
    let mut arr = rng_for(seed, streams::ARRIVALS);
    let mut run = rng_for(seed, streams::RUNTIMES);
    let mut t = 0.0;
    (0..n)
        .map(|i| {
            t += sample_exp(&mut arr, 4.0);
            JobSubmission {
                profile: JobProfile::new(
                    JobId(i as u64),
                    ClientId(0),
                    JobRequirements::unconstrained(),
                    sample_exp(&mut run, 100.0).max(5.0),
                ),
                arrival_secs: t,
                actual_runtime_secs: None,
            }
        })
        .collect()
}

fn run(graceful: f64, seed: u64) -> dgrid_core::SimReport {
    let cfg = EngineConfig {
        seed,
        // Long heartbeat window so the graceful-notification advantage is
        // clearly visible against timeout-based detection.
        heartbeat_secs: 60.0,
        heartbeat_misses: 3,
        client_resubmit_secs: 600.0,
        max_sim_secs: 3_000_000.0,
        ..EngineConfig::default()
    };
    let churn = ChurnConfig {
        mttf_secs: Some(2_500.0),
        rejoin_after_secs: Some(400.0),
        graceful_fraction: graceful,
    };
    Engine::new(
        cfg,
        churn,
        Box::new(CentralizedMatchmaker::new()),
        nodes(40, seed),
        jobs(300, seed),
    )
    .run()
}

#[test]
fn all_graceful_means_no_abrupt_failures() {
    let r = run(1.0, 1);
    assert_eq!(r.node_failures, 0);
    assert!(r.graceful_leaves > 0, "churn must fire");
    assert_eq!(r.jobs_completed + r.jobs_failed, 300);
    assert!(
        r.completion_rate() > 0.97,
        "rate {:.3}",
        r.completion_rate()
    );
}

#[test]
fn all_abrupt_means_no_graceful_leaves() {
    let r = run(0.0, 1);
    assert_eq!(r.graceful_leaves, 0);
    assert!(r.node_failures > 0);
}

#[test]
fn mixed_churn_counts_both_kinds() {
    let r = run(0.5, 2);
    assert!(r.node_failures > 0, "some abrupt");
    assert!(r.graceful_leaves > 0, "some graceful");
    assert_eq!(r.jobs_completed + r.jobs_failed, 300);
}

#[test]
fn graceful_departures_recover_faster_than_abrupt() {
    // Same workload, same churn intensity; announced departures skip the
    // 180 s heartbeat-timeout window. The saving shows in *turnaround*
    // (wait time only counts until the FIRST execution start, so recovery
    // latency of already-running victims never reaches it). Averaged over
    // seeds to damp latency-stream noise.
    let mut graceful_turn = 0.0;
    let mut abrupt_turn = 0.0;
    for seed in [3u64, 4, 5] {
        graceful_turn += run(1.0, seed).turnaround.mean();
        abrupt_turn += run(0.0, seed).turnaround.mean();
    }
    assert!(
        graceful_turn < abrupt_turn,
        "graceful {:.1}s turnaround should beat abrupt {:.1}s",
        graceful_turn / 3.0,
        abrupt_turn / 3.0
    );
}

#[test]
fn graceful_leave_works_over_p2p_overlays() {
    // The overlay-level leave path (Chord `leave`, CAN `leave`) must be
    // exercised without breaking routing or the tree rebuild.
    let cfg = EngineConfig {
        seed: 6,
        max_sim_secs: 3_000_000.0,
        ..EngineConfig::default()
    };
    let churn = ChurnConfig {
        mttf_secs: Some(2_000.0),
        rejoin_after_secs: Some(300.0),
        graceful_fraction: 0.7,
    };
    let r = Engine::new(
        cfg,
        churn,
        Box::new(RnTreeMatchmaker::with_defaults()),
        nodes(48, 6),
        jobs(250, 6),
    )
    .run();
    assert_eq!(r.jobs_completed + r.jobs_failed, 250);
    assert!(r.graceful_leaves > 0);
    assert!(
        r.completion_rate() > 0.95,
        "rate {:.3}",
        r.completion_rate()
    );
}
