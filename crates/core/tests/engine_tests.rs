//! End-to-end engine tests: the Figure-1 lifecycle, the recovery protocol,
//! the sandbox, and determinism — for each of the three matchmakers.

use dgrid_core::{
    CanMatchmaker, CentralizedMatchmaker, ChurnConfig, Engine, EngineConfig, JobSubmission,
    Matchmaker, RnTreeMatchmaker, SandboxPolicy,
};
use dgrid_resources::{
    Capabilities, ClientId, JobId, JobProfile, JobRequirements, NodeProfile, OsType, ResourceKind,
};
use dgrid_sim::rng::{rng_for, sample_exp, streams};
use rand::Rng;

fn mixed_nodes(n: usize, seed: u64) -> Vec<NodeProfile> {
    let mut rng = rng_for(seed, streams::NODE_CAPS);
    (0..n)
        .map(|_| {
            NodeProfile::new(Capabilities::new(
                rng.gen_range(0.5..4.0),
                rng.gen_range(0.25..8.0),
                rng.gen_range(10.0..500.0),
                OsType::Linux,
            ))
        })
        .collect()
}

fn easy_jobs(n: usize, seed: u64, mean_runtime: f64, mean_interarrival: f64) -> Vec<JobSubmission> {
    let mut arr = rng_for(seed, streams::ARRIVALS);
    let mut run = rng_for(seed, streams::RUNTIMES);
    let mut t = 0.0;
    (0..n)
        .map(|i| {
            t += sample_exp(&mut arr, mean_interarrival);
            JobSubmission {
                profile: JobProfile::new(
                    JobId(i as u64),
                    ClientId((i % 8) as u32),
                    JobRequirements::unconstrained(),
                    sample_exp(&mut run, mean_runtime).max(1.0),
                ),
                arrival_secs: t,
                actual_runtime_secs: None,
            }
        })
        .collect()
}

fn base_cfg(seed: u64) -> EngineConfig {
    EngineConfig {
        seed,
        max_sim_secs: 200_000.0,
        ..EngineConfig::default()
    }
}

fn run_with(
    mm: Box<dyn Matchmaker>,
    seed: u64,
    nodes: usize,
    jobs: usize,
) -> dgrid_core::SimReport {
    let engine = Engine::new(
        base_cfg(seed),
        ChurnConfig::none(),
        mm,
        mixed_nodes(nodes, seed),
        easy_jobs(jobs, seed, 100.0, 1.0),
    );
    engine.run()
}

#[test]
fn centralized_completes_all_jobs() {
    let r = run_with(Box::new(CentralizedMatchmaker::new()), 1, 50, 200);
    assert_eq!(r.jobs_completed, 200);
    assert_eq!(r.jobs_failed, 0);
    assert_eq!(r.wait_time.len(), 200);
    assert!(
        r.match_hops.mean() == 0.0,
        "central matchmaking costs 0 hops"
    );
}

#[test]
fn rntree_completes_all_jobs_with_log_hops() {
    let r = run_with(Box::new(RnTreeMatchmaker::with_defaults()), 2, 64, 200);
    assert_eq!(r.jobs_completed, 200);
    assert_eq!(r.jobs_failed, 0);
    let mean_hops = r.match_hops.mean() + r.owner_hops.mean();
    assert!(mean_hops > 0.0, "P2P matchmaking costs hops");
    assert!(
        mean_hops < 40.0,
        "matchmaking cost should be small (got {mean_hops:.1})"
    );
}

#[test]
fn can_completes_all_jobs() {
    let r = run_with(Box::new(CanMatchmaker::with_defaults()), 3, 64, 200);
    assert_eq!(r.jobs_completed, 200);
    assert_eq!(r.jobs_failed, 0);
    assert!(r.owner_hops.mean() > 0.0);
}

#[test]
fn can_push_completes_all_jobs() {
    let r = run_with(Box::new(CanMatchmaker::with_push()), 4, 64, 200);
    assert_eq!(r.jobs_completed, 200);
    assert_eq!(r.jobs_failed, 0);
}

#[test]
fn same_seed_is_bit_identical() {
    let a = run_with(Box::new(RnTreeMatchmaker::with_defaults()), 7, 48, 150);
    let b = run_with(Box::new(RnTreeMatchmaker::with_defaults()), 7, 48, 150);
    assert_eq!(a.jobs_completed, b.jobs_completed);
    assert_eq!(a.wait_time.samples(), b.wait_time.samples());
    assert_eq!(a.match_hops.samples(), b.match_hops.samples());
    assert_eq!(a.makespan_secs, b.makespan_secs);
}

#[test]
fn different_seeds_differ() {
    let a = run_with(Box::new(CentralizedMatchmaker::new()), 8, 48, 150);
    let b = run_with(Box::new(CentralizedMatchmaker::new()), 9, 48, 150);
    assert_ne!(a.wait_time.samples(), b.wait_time.samples());
}

#[test]
fn constrained_jobs_run_only_on_capable_nodes() {
    // 10 strong nodes + 40 weak; jobs require what only the strong have.
    let mut nodes = Vec::new();
    for i in 0..50 {
        let caps = if i < 10 {
            Capabilities::new(3.5, 8.0, 400.0, OsType::Linux)
        } else {
            Capabilities::new(1.0, 0.5, 20.0, OsType::Linux)
        };
        nodes.push(NodeProfile::new(caps));
    }
    let jobs: Vec<JobSubmission> = (0..100)
        .map(|i| JobSubmission {
            profile: JobProfile::new(
                JobId(i),
                ClientId(0),
                JobRequirements::unconstrained()
                    .with_min(ResourceKind::Memory, 4.0)
                    .with_min(ResourceKind::CpuSpeed, 2.0),
                50.0,
            ),
            arrival_secs: i as f64,
            actual_runtime_secs: None,
        })
        .collect();
    for mm in [
        Box::new(CentralizedMatchmaker::new()) as Box<dyn Matchmaker>,
        Box::new(RnTreeMatchmaker::with_defaults()),
        Box::new(CanMatchmaker::with_defaults()),
    ] {
        let name = mm.name();
        let r = Engine::new(
            base_cfg(11),
            ChurnConfig::none(),
            mm,
            nodes.clone(),
            jobs.clone(),
        )
        .run();
        assert_eq!(r.jobs_completed, 100, "{name}: all jobs must complete");
        // Only the 10 strong nodes may have executed anything.
        for (i, &count) in r.node_jobs.iter().enumerate() {
            if i >= 10 {
                assert_eq!(count, 0, "{name}: weak node {i} ran a constrained job");
            }
        }
    }
}

#[test]
fn impossible_jobs_fail_with_no_match() {
    let nodes = mixed_nodes(20, 13);
    let jobs: Vec<JobSubmission> = (0..5)
        .map(|i| JobSubmission {
            profile: JobProfile::new(
                JobId(i),
                ClientId(0),
                JobRequirements::unconstrained().with_min(ResourceKind::Memory, 1e6),
                50.0,
            ),
            arrival_secs: i as f64,
            actual_runtime_secs: None,
        })
        .collect();
    let r = Engine::new(
        base_cfg(14),
        ChurnConfig::none(),
        Box::new(CentralizedMatchmaker::new()),
        nodes,
        jobs,
    )
    .run();
    assert_eq!(r.jobs_completed, 0);
    assert_eq!(r.jobs_failed, 5);
    assert!(r.match_failures >= 5);
}

#[test]
fn recovery_from_run_node_failures() {
    // Aggressive churn with rejoin: the owner/run pair must recover; with
    // resubmission as the backstop every job still completes or fails
    // explicitly — none may be lost.
    let cfg = EngineConfig {
        seed: 21,
        max_sim_secs: 2_000_000.0,
        ..EngineConfig::default()
    };
    let churn = ChurnConfig {
        mttf_secs: Some(4_000.0),
        rejoin_after_secs: Some(600.0),
        graceful_fraction: 0.0,
    };
    let r = Engine::new(
        cfg,
        churn,
        Box::new(CentralizedMatchmaker::new()),
        mixed_nodes(40, 21),
        easy_jobs(300, 21, 200.0, 5.0),
    )
    .run();
    assert_eq!(r.jobs_completed + r.jobs_failed, 300, "no job may be lost");
    assert!(r.node_failures > 0, "churn must actually fire");
    assert!(
        r.run_recoveries > 0,
        "owner must have recovered run failures"
    );
    assert!(
        r.completion_rate() > 0.95,
        "recovery should save nearly all jobs (rate {:.3})",
        r.completion_rate()
    );
}

#[test]
fn p2p_recovery_owner_and_run_roles() {
    let cfg = EngineConfig {
        seed: 22,
        max_sim_secs: 2_000_000.0,
        ..EngineConfig::default()
    };
    let churn = ChurnConfig {
        mttf_secs: Some(3_000.0),
        rejoin_after_secs: Some(500.0),
        graceful_fraction: 0.0,
    };
    let r = Engine::new(
        cfg,
        churn,
        Box::new(RnTreeMatchmaker::with_defaults()),
        mixed_nodes(48, 22),
        easy_jobs(300, 22, 200.0, 5.0),
    )
    .run();
    assert_eq!(r.jobs_completed + r.jobs_failed, 300);
    assert!(r.node_failures > 0);
    assert!(
        r.run_recoveries + r.owner_recoveries + r.client_resubmits > 0,
        "some recovery path must have fired"
    );
    assert!(
        r.completion_rate() > 0.9,
        "P2P recovery should save most jobs (rate {:.3})",
        r.completion_rate()
    );
}

#[test]
fn sandbox_kills_runaway_jobs() {
    let nodes = mixed_nodes(10, 31);
    // Declared 10 s, actually runs 1000 s: killed at slack × declared.
    let jobs: Vec<JobSubmission> = (0..20)
        .map(|i| JobSubmission {
            profile: JobProfile::new(
                JobId(i),
                ClientId(0),
                JobRequirements::unconstrained(),
                10.0,
            ),
            arrival_secs: i as f64 * 5.0,
            actual_runtime_secs: Some(if i % 2 == 0 { 1000.0 } else { 10.0 }),
        })
        .collect();
    let cfg = EngineConfig {
        seed: 31,
        sandbox: SandboxPolicy {
            runtime_slack: 3.0,
            max_output_bytes: u64::MAX,
        },
        ..EngineConfig::default()
    };
    let r = Engine::new(
        cfg,
        ChurnConfig::none(),
        Box::new(CentralizedMatchmaker::new()),
        nodes,
        jobs,
    )
    .run();
    assert_eq!(r.sandbox_kills, 10, "every runaway job is killed");
    assert_eq!(r.jobs_completed, 10);
    assert_eq!(r.jobs_failed, 10);
}

#[test]
fn sandbox_admission_rejects_oversized_output() {
    let nodes = mixed_nodes(5, 32);
    let mut profile = JobProfile::new(
        JobId(0),
        ClientId(0),
        JobRequirements::unconstrained(),
        10.0,
    );
    profile.output_bytes = 1 << 40; // 1 TiB declared output
    let cfg = EngineConfig {
        seed: 32,
        sandbox: SandboxPolicy {
            runtime_slack: f64::INFINITY,
            max_output_bytes: 1 << 30,
        },
        ..EngineConfig::default()
    };
    let r = Engine::new(
        cfg,
        ChurnConfig::none(),
        Box::new(CentralizedMatchmaker::new()),
        nodes,
        vec![JobSubmission {
            profile,
            arrival_secs: 0.0,
            actual_runtime_secs: None,
        }],
    )
    .run();
    assert_eq!(r.sandbox_kills, 1);
    assert_eq!(r.jobs_failed, 1);
}

#[test]
fn fifo_order_on_a_single_node() {
    // One node, jobs arriving back to back: waits must be monotone in
    // arrival order (FIFO), and each wait ≈ sum of predecessors' runtimes.
    let nodes = vec![NodeProfile::new(Capabilities::new(
        2.0,
        4.0,
        100.0,
        OsType::Linux,
    ))];
    let jobs: Vec<JobSubmission> = (0..5)
        .map(|i| JobSubmission {
            profile: JobProfile::new(
                JobId(i),
                ClientId(0),
                JobRequirements::unconstrained(),
                100.0,
            ),
            arrival_secs: i as f64 * 0.01,
            actual_runtime_secs: None,
        })
        .collect();
    let r = Engine::new(
        base_cfg(33),
        ChurnConfig::none(),
        Box::new(CentralizedMatchmaker::new()),
        nodes,
        jobs,
    )
    .run();
    assert_eq!(r.jobs_completed, 5);
    let waits = r.wait_time.samples();
    // Five jobs on one node, 100 s each: waits roughly 0, 100, ..., 400.
    let mut sorted = waits.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (i, w) in sorted.iter().enumerate() {
        let expected = 100.0 * i as f64;
        assert!(
            (w - expected).abs() < 10.0,
            "wait {i} = {w:.1}, expected ≈ {expected}"
        );
    }
}

#[test]
fn utilization_accounting_is_conserved() {
    let r = run_with(Box::new(CentralizedMatchmaker::new()), 41, 30, 100);
    let total_busy: f64 = r.node_busy_secs.iter().sum();
    // All jobs completed, so total busy time equals the sum of runtimes.
    let total_jobs: u64 = r.node_jobs.iter().sum();
    assert_eq!(total_jobs, 100);
    assert!(total_busy > 0.0);
    // Mean runtime 100 s × 100 jobs ⇒ total ≈ 10 000 s (exponential spread).
    assert!(
        (5_000.0..20_000.0).contains(&total_busy),
        "total busy {total_busy}"
    );
}
