//! Property battery for the generational arenas backing node/job state.
//!
//! The kernel swap moved hot records out of hash maps and into
//! slot-addressed arenas, so three properties now carry the determinism
//! and staleness guarantees the engine used to get from keyed maps:
//!
//! 1. **No cross-epoch index reuse without a generation bump** — once a
//!    record is removed, every handle issued to the old occupant is dead
//!    forever, even after the slot is recycled arbitrarily many times.
//! 2. **The free-list never hands out a live slot** — live handles remain
//!    valid and uniquely addressed across any grant/expire/churn history.
//! 3. **Iteration order is stable and deterministic** — ascending slot
//!    order, a pure function of the operation history, bit-for-bit equal
//!    across two replays of the same sequence.
//!
//! The arena is driven differentially against a `BTreeMap`-based model.

use std::collections::BTreeMap;

use dgrid_core::arena::{Arena, JobTag};
use proptest::prelude::*;

type Idx = dgrid_core::arena::ArenaIdx<JobTag>;

/// One step of a grant/expire/churn history. Indices into `live` pick which
/// existing record an op targets (modulo the live count at that moment).
#[derive(Clone, Debug)]
enum Op {
    /// Grant: insert a fresh record.
    Insert,
    /// Expire: remove the k-th live record.
    Remove(usize),
    /// Churn: remove the k-th live record and immediately re-insert — the
    /// classic fail/rejoin pattern that recycles a slot.
    Churn(usize),
    /// Probe a *stale* handle (one already removed) — must stay dead.
    ProbeStale(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => Just(Op::Insert),
        2 => (0usize..64).prop_map(Op::Remove),
        2 => (0usize..64).prop_map(Op::Churn),
        1 => (0usize..64).prop_map(Op::ProbeStale),
    ]
}

/// Replay `ops`, checking the arena against the model at every step.
/// Returns the final iteration snapshot so callers can compare replays.
fn run_model(ops: &[Op]) -> Result<Vec<(u32, u32, u64)>, TestCaseError> {
    let mut arena: Arena<u64, JobTag> = Arena::new();
    // Model: payload by live handle, in insertion order.
    let mut live: Vec<(Idx, u64)> = Vec::new();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new(); // payload -> payload
    let mut dead: Vec<Idx> = Vec::new();
    let mut next_payload = 0u64;

    let grant = |arena: &mut Arena<u64, JobTag>,
                 live: &mut Vec<(Idx, u64)>,
                 model: &mut BTreeMap<u64, u64>,
                 next_payload: &mut u64| {
        let p = *next_payload;
        *next_payload += 1;
        let idx = arena.insert(p);
        live.push((idx, p));
        model.insert(p, p);
        idx
    };

    for op in ops {
        match *op {
            Op::Insert => {
                grant(&mut arena, &mut live, &mut model, &mut next_payload);
            }
            Op::Remove(k) if !live.is_empty() => {
                let (idx, p) = live.remove(k % live.len());
                prop_assert_eq!(arena.remove(idx), Some(p));
                model.remove(&p);
                dead.push(idx);
            }
            Op::Churn(k) if !live.is_empty() => {
                let (idx, p) = live.remove(k % live.len());
                prop_assert_eq!(arena.remove(idx), Some(p));
                model.remove(&p);
                dead.push(idx);
                let fresh = grant(&mut arena, &mut live, &mut model, &mut next_payload);
                if fresh.slot() == idx.slot() {
                    // Slot recycled: the generation must have bumped, or the
                    // stale handle would alias the new occupant.
                    prop_assert_ne!(fresh.generation(), idx.generation());
                }
            }
            Op::ProbeStale(k) if !dead.is_empty() => {
                let idx = dead[k % dead.len()];
                prop_assert!(arena.get(idx).is_none(), "stale handle resolved");
                prop_assert!(arena.remove(idx).is_none(), "stale handle removed twice");
            }
            _ => {}
        }

        // Every live handle still resolves to exactly its own payload, so
        // the free-list can never have handed a live slot to a new grant.
        prop_assert_eq!(arena.len(), live.len());
        for &(idx, p) in &live {
            prop_assert_eq!(arena.get(idx), Some(&p));
        }
        // Iteration agrees with the model's content and visits slots in
        // strictly ascending order.
        let snapshot: Vec<u64> = arena.iter().map(|(_, &v)| v).collect();
        let mut sorted_model: Vec<u64> = model.keys().copied().collect();
        let mut sorted_snapshot = snapshot.clone();
        sorted_snapshot.sort_unstable();
        sorted_model.sort_unstable();
        prop_assert_eq!(sorted_snapshot, sorted_model);
        let slots: Vec<u32> = arena.iter().map(|(i, _)| i.slot()).collect();
        prop_assert!(
            slots.windows(2).all(|w| w[0] < w[1]),
            "slot order not ascending"
        );
    }

    Ok(arena
        .iter()
        .map(|(i, &v)| (i.slot(), i.generation(), v))
        .collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary grant/expire/churn histories hold all three arena
    /// invariants at every step.
    #[test]
    fn arena_matches_model_under_churn(
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        run_model(&ops)?;
    }

    /// Replaying the same history twice yields bit-identical iteration
    /// snapshots — arena layout is a pure function of the op sequence.
    #[test]
    fn arena_iteration_is_replay_deterministic(
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        let a = run_model(&ops)?;
        let b = run_model(&ops)?;
        prop_assert_eq!(a, b);
    }

    /// Hammering a single slot: repeated churn of the same record must bump
    /// the generation every time and never resurrect any prior handle.
    #[test]
    fn single_slot_churn_bumps_generation_monotonically(n in 1usize..300) {
        let mut arena: Arena<usize, JobTag> = Arena::new();
        let mut handles: Vec<Idx> = Vec::new();
        let mut idx = arena.insert(0);
        for round in 1..n {
            handles.push(idx);
            prop_assert!(arena.remove(idx).is_some());
            idx = arena.insert(round);
            prop_assert_eq!(idx.slot(), 0, "single-record arena must recycle slot 0");
            prop_assert_eq!(idx.generation(), round as u32);
            for &old in &handles {
                prop_assert!(arena.get(old).is_none());
            }
        }
    }
}
