//! Section 2's result-return options: directly, or as a DHT pointer
//! ("another GUID") that the client resolves.

use dgrid_core::{
    CanMatchmaker, CentralizedMatchmaker, ChurnConfig, Engine, EngineConfig, JobSubmission,
    Matchmaker, RnTreeMatchmaker,
};
use dgrid_resources::{
    Capabilities, ClientId, JobId, JobProfile, JobRequirements, NodeProfile, OsType,
};

fn nodes(n: usize) -> Vec<NodeProfile> {
    (0..n)
        .map(|i| {
            NodeProfile::new(Capabilities::new(
                1.0 + (i % 5) as f64 * 0.5,
                1.0 + (i % 4) as f64,
                50.0,
                OsType::Linux,
            ))
        })
        .collect()
}

fn jobs(n: usize) -> Vec<JobSubmission> {
    (0..n)
        .map(|i| JobSubmission {
            profile: JobProfile::new(
                JobId(i as u64),
                ClientId(0),
                JobRequirements::unconstrained(),
                60.0,
            ),
            arrival_secs: i as f64,
            actual_runtime_secs: None,
        })
        .collect()
}

fn run(mm: Box<dyn Matchmaker>, by_reference: bool, seed: u64) -> dgrid_core::SimReport {
    let cfg = EngineConfig {
        seed,
        return_results_by_reference: by_reference,
        ..EngineConfig::default()
    };
    Engine::new(cfg, ChurnConfig::none(), mm, nodes(48), jobs(150)).run()
}

#[test]
fn direct_return_records_no_result_hops() {
    let r = run(Box::new(RnTreeMatchmaker::with_defaults()), false, 1);
    assert_eq!(r.jobs_completed, 150);
    assert!(r.result_hops.is_empty());
}

#[test]
fn by_reference_costs_overlay_lookups_on_p2p() {
    for mm in [
        Box::new(RnTreeMatchmaker::with_defaults()) as Box<dyn Matchmaker>,
        Box::new(CanMatchmaker::with_defaults()),
    ] {
        let label = mm.name();
        let r = run(mm, true, 2);
        assert_eq!(r.jobs_completed, 150, "{label}");
        assert_eq!(
            r.result_hops.len(),
            150,
            "{label}: one sample per completion"
        );
        let mean = r.result_hops.mean();
        assert!(
            mean > 0.0 && mean < 30.0,
            "{label}: publish+resolve should be a few hops, got {mean:.1}"
        );
    }
}

#[test]
fn by_reference_is_free_for_the_central_server() {
    let r = run(Box::new(CentralizedMatchmaker::new()), true, 3);
    assert_eq!(r.jobs_completed, 150);
    assert_eq!(r.result_hops.mean(), 0.0, "the server *is* the directory");
}

#[test]
fn by_reference_adds_result_latency_after_execution() {
    // All jobs run exactly 60 s, so (turnaround − wait − 60) isolates the
    // result-return latency: one direct hop (~50 ms) when shipping the
    // result, publish + resolve + transfer (several hops) by reference.
    // (Exact waits differ between the runs because the extra overlay
    // lookups advance the shared random streams.)
    let overhead = |r: &dgrid_core::SimReport| r.turnaround.mean() - r.wait_time.mean() - 60.0;
    let direct = run(Box::new(RnTreeMatchmaker::with_defaults()), false, 4);
    let by_ref = run(Box::new(RnTreeMatchmaker::with_defaults()), true, 4);
    assert_eq!(direct.jobs_completed, 150);
    assert_eq!(by_ref.jobs_completed, 150);
    let (d, b) = (overhead(&direct), overhead(&by_ref));
    assert!(d > 0.0 && d < 0.2, "direct return is ~one hop, got {d:.3}s");
    assert!(
        b > 2.0 * d,
        "by-reference must add lookup latency: direct {d:.3}s vs by-ref {b:.3}s"
    );
}
