//! End-to-end tests of the Section 5 dependency extension: ordering,
//! held-back submission, and failure cascades.

use dgrid_core::{
    CentralizedMatchmaker, ChurnConfig, Engine, EngineConfig, JobDag, JobSubmission,
    RnTreeMatchmaker, SandboxPolicy,
};
use dgrid_resources::{
    Capabilities, ClientId, JobId, JobProfile, JobRequirements, NodeProfile, OsType,
};

fn nodes(n: usize) -> Vec<NodeProfile> {
    (0..n)
        .map(|_| NodeProfile::new(Capabilities::new(2.0, 4.0, 100.0, OsType::Linux)))
        .collect()
}

fn job(id: u64, arrival: f64, runtime: f64) -> JobSubmission {
    JobSubmission {
        profile: JobProfile::new(
            JobId(id),
            ClientId(0),
            JobRequirements::unconstrained(),
            runtime,
        ),
        arrival_secs: arrival,
        actual_runtime_secs: None,
    }
}

fn cfg(seed: u64) -> EngineConfig {
    EngineConfig {
        seed,
        ..EngineConfig::default()
    }
}

#[test]
fn chain_runs_in_order() {
    // simulation -> analysis -> summary: later stages must wait.
    let jobs = vec![job(1, 0.0, 100.0), job(2, 0.0, 50.0), job(3, 0.0, 25.0)];
    let dag = JobDag::chain(&[JobId(1), JobId(2), JobId(3)]);
    let r = Engine::with_dag(
        cfg(1),
        ChurnConfig::none(),
        Box::new(CentralizedMatchmaker::new()),
        nodes(10),
        jobs,
        dag,
    )
    .run();
    assert_eq!(r.jobs_completed, 3);
    // The chain is strictly serial: makespan ≥ 100 + 50 + 25 s.
    assert!(
        r.makespan_secs >= 175.0,
        "serial chain must take ≥ 175 s, took {:.1}",
        r.makespan_secs
    );
    // Child waits include the time spent held back, so the mean wait of the
    // chain far exceeds any single queueing delay.
    assert!(r.wait_time.max().unwrap() >= 150.0);
}

#[test]
fn independent_jobs_run_in_parallel_next_to_a_chain() {
    // 20 independent jobs plus one 2-stage pipeline: the independents must
    // not be delayed by the pipeline.
    let mut jobs: Vec<JobSubmission> = (0..20).map(|i| job(i, 0.0, 50.0)).collect();
    jobs.push(job(100, 0.0, 100.0));
    jobs.push(job(101, 0.0, 10.0));
    let mut dag = JobDag::none();
    dag.add_dependency(JobId(101), JobId(100));
    let r = Engine::with_dag(
        cfg(2),
        ChurnConfig::none(),
        Box::new(CentralizedMatchmaker::new()),
        nodes(30),
        jobs,
        dag,
    )
    .run();
    assert_eq!(r.jobs_completed, 22);
    // Pipeline finish ≈ 100 + 10 (+ small latencies); everything done well
    // under a serialized schedule.
    assert!(r.makespan_secs < 200.0, "makespan {:.1}", r.makespan_secs);
}

#[test]
fn diamond_joins_wait_for_all_parents() {
    //      1
    //     / \
    //    2   3      4 depends on BOTH 2 and 3.
    //     \ /
    //      4
    let jobs = vec![
        job(1, 0.0, 10.0),
        job(2, 0.0, 100.0),
        job(3, 0.0, 20.0),
        job(4, 0.0, 5.0),
    ];
    let mut dag = JobDag::none();
    dag.add_dependency(JobId(2), JobId(1));
    dag.add_dependency(JobId(3), JobId(1));
    dag.add_dependency(JobId(4), JobId(2));
    dag.add_dependency(JobId(4), JobId(3));
    let r = Engine::with_dag(
        cfg(3),
        ChurnConfig::none(),
        Box::new(CentralizedMatchmaker::new()),
        nodes(10),
        jobs,
        dag,
    )
    .run();
    assert_eq!(r.jobs_completed, 4);
    // 4 waits for the slower branch (2): ≥ 10 + 100 + 5.
    assert!(r.makespan_secs >= 115.0, "makespan {:.1}", r.makespan_secs);
}

#[test]
fn failed_parent_cascades_to_descendants() {
    // Parent is a runaway job the sandbox kills; its whole pipeline dies
    // with an explicit DependencyFailed, never hangs.
    let mut parent = job(1, 0.0, 10.0);
    parent.actual_runtime_secs = Some(10_000.0); // runaway
    let jobs = vec![
        parent,
        job(2, 0.0, 50.0),
        job(3, 0.0, 50.0),
        job(4, 0.0, 50.0),
    ];
    let mut dag = JobDag::none();
    dag.add_dependency(JobId(2), JobId(1));
    dag.add_dependency(JobId(3), JobId(2));
    dag.add_dependency(JobId(4), JobId(1));
    let engine_cfg = EngineConfig {
        seed: 4,
        sandbox: SandboxPolicy {
            runtime_slack: 2.0,
            max_output_bytes: u64::MAX,
        },
        ..EngineConfig::default()
    };
    let r = Engine::with_dag(
        engine_cfg,
        ChurnConfig::none(),
        Box::new(CentralizedMatchmaker::new()),
        nodes(5),
        jobs,
        dag,
    )
    .run();
    assert_eq!(r.sandbox_kills, 1);
    assert_eq!(r.jobs_failed, 4, "parent + 3 descendants");
    assert_eq!(r.dependency_failures, 3);
    assert_eq!(r.jobs_completed, 0);
}

#[test]
fn dag_works_over_p2p_matchmaking_too() {
    let jobs: Vec<JobSubmission> = (0..30).map(|i| job(i, i as f64, 30.0)).collect();
    // Three 10-stage chains interleaved.
    let mut dag = JobDag::none();
    for c in 0..3u64 {
        for s in 1..10u64 {
            dag.add_dependency(JobId(c + 3 * s), JobId(c + 3 * (s - 1)));
        }
    }
    let r = Engine::with_dag(
        cfg(5),
        ChurnConfig::none(),
        Box::new(RnTreeMatchmaker::with_defaults()),
        nodes(16),
        jobs,
        dag,
    )
    .run();
    assert_eq!(r.jobs_completed, 30);
    // Each chain is serial (10 × 30 s) but the three run concurrently.
    assert!(r.makespan_secs >= 300.0);
    assert!(r.makespan_secs < 3.0 * 400.0);
}

#[test]
fn dag_survives_churn_without_losing_jobs() {
    let jobs: Vec<JobSubmission> = (0..40).map(|i| job(i, i as f64, 60.0)).collect();
    let dag = JobDag::chain(&(0..40).map(JobId).collect::<Vec<_>>());
    let engine_cfg = EngineConfig {
        seed: 6,
        max_sim_secs: 5_000_000.0,
        ..EngineConfig::default()
    };
    let churn = ChurnConfig {
        mttf_secs: Some(5_000.0),
        rejoin_after_secs: Some(300.0),
        graceful_fraction: 0.0,
    };
    let r = Engine::with_dag(
        engine_cfg,
        churn,
        Box::new(RnTreeMatchmaker::with_defaults()),
        nodes(24),
        jobs,
        dag,
    )
    .run();
    assert_eq!(
        r.jobs_completed + r.jobs_failed,
        40,
        "conservation under churn"
    );
    assert!(r.completion_rate() > 0.9, "rate {:.3}", r.completion_rate());
}

#[test]
fn client_fairness_is_reported() {
    // Two clients with identical demands should see similar average waits.
    let mut jobs = Vec::new();
    for i in 0..60u64 {
        let mut j = job(i, i as f64 * 0.5, 40.0);
        j.profile.client = ClientId((i % 2) as u32);
        jobs.push(j);
    }
    let r = Engine::new(
        cfg(7),
        ChurnConfig::none(),
        Box::new(CentralizedMatchmaker::new()),
        nodes(12),
        jobs,
    )
    .run();
    assert_eq!(r.client_waits.len(), 2);
    assert!(
        r.client_fairness() > 0.8,
        "symmetric clients should be treated fairly: {:.3}",
        r.client_fairness()
    );
}
