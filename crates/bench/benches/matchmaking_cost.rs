//! Experiment T-hops — the paper's claim that "both the CAN and RN-Tree can
//! find an appropriate run node for a job with a small number of hops
//! through the P2P overlay network", and that cost scales gently with N.
//!
//! Prints mean/p99 total matchmaking hops per job for N ∈ {64, 128, 256},
//! then times one matchmaking-heavy simulation per algorithm.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dgrid::harness::{run_scenario, Algorithm};
use dgrid::workloads::PaperScenario;

fn matchmaking_cost(c: &mut Criterion) {
    eprintln!("--- T-hops: matchmaking cost (hops/job) vs system size");
    for &n in &[64usize, 128, 256] {
        for alg in [Algorithm::Can, Algorithm::RnTree] {
            let mut r = run_scenario(alg, PaperScenario::MixedHeavy, n, 2 * n, 3001 + n as u64);
            let (mean, p99) = r.hop_summary();
            let owner = r.owner_hops.mean();
            eprintln!(
                "    N={n:<4} {:<8} owner_hops={owner:>5.1} match_hops mean={mean:>5.1} p99={p99:>5.1}",
                alg.label()
            );
        }
    }

    let mut g = c.benchmark_group("matchmaking_cost");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for alg in [Algorithm::Can, Algorithm::RnTree] {
        g.bench_function(alg.label(), |b| {
            b.iter(|| run_scenario(alg, PaperScenario::MixedHeavy, 128, 256, 3002))
        });
    }
    g.finish();
}

criterion_group!(benches, matchmaking_cost);
criterion_main!(benches);
