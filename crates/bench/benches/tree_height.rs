//! Experiment T-tree — Section 3.1's claim that "the overall height of the
//! RN-Tree is likely to be O(log N)". Prints measured height against
//! log₂(N) for growing rings, then times tree construction.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dgrid::chord::{ChordId, ChordRing};
use dgrid::rntree::RnTree;
use dgrid::sim::rng::{rng_for, streams};
use rand::Rng;

fn ring_of(n: usize, seed: u64) -> ChordRing {
    let mut rng = rng_for(seed, streams::NODE_IDS);
    let mut ring = ChordRing::default();
    let mut count = 0;
    while count < n {
        let id = ChordId(rng.gen());
        if !ring.is_alive(id) {
            ring.join(id);
            count += 1;
        }
    }
    ring.stabilize();
    ring
}

fn tree_height(c: &mut Criterion) {
    eprintln!("--- T-tree: RN-Tree height vs log2(N)");
    for &n in &[64usize, 256, 1024, 4096, 8192] {
        let ring = ring_of(n, 6001 + n as u64);
        let (tree, build_hops) = RnTree::build_counting(&ring);
        eprintln!(
            "    N={n:<5} height={:<3} log2(N)={:<5.1} build_hops/node={:.2}",
            tree.height(),
            (n as f64).log2(),
            build_hops as f64 / n as f64,
        );
    }

    let mut g = c.benchmark_group("tree_height");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    let ring = ring_of(1024, 6002);
    g.bench_function("build/N=1024", |b| b.iter(|| RnTree::build(&ring)));
    g.finish();
}

criterion_group!(benches, tree_height);
criterion_main!(benches);
