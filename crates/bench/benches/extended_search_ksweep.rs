//! Experiment A-k — Section 3.1's design choice: extended search. "Rather
//! than stopping at the first candidate capable of executing a given job,
//! the search proceeds until at least k capable nodes are found for better
//! load balancing."
//!
//! Sweeps k and reports the balance-vs-cost trade: larger k smooths wait
//! times at the price of more search hops.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dgrid::core::{ChurnConfig, RnTreeConfig, RnTreeMatchmaker};
use dgrid::harness::paper_engine_config;
use dgrid::workloads::{paper_scenario, PaperScenario};
use dgrid_bench::{BENCH_JOBS, BENCH_NODES};

fn run_with_k(k: usize, seed: u64) -> dgrid::core::SimReport {
    let workload = paper_scenario(PaperScenario::MixedLight, BENCH_NODES, BENCH_JOBS, seed);
    let mm = Box::new(RnTreeMatchmaker::new(RnTreeConfig {
        k,
        ..RnTreeConfig::default()
    }));
    dgrid::core::Engine::new(
        paper_engine_config(seed),
        ChurnConfig::none(),
        mm,
        workload.nodes,
        workload.submissions,
    )
    .run()
}

fn ksweep(c: &mut Criterion) {
    eprintln!("--- A-k: extended-search width vs balance and cost (rn-tree, mixed/light)");
    for &k in &[1usize, 2, 4, 8, 16] {
        let r = run_with_k(k, 8001);
        eprintln!(
            "    k={k:<3} mean_wait={:>8.1}s std_wait={:>8.1}s match_hops={:>5.1}",
            r.mean_wait(),
            r.std_wait(),
            r.match_hops.mean(),
        );
    }

    let mut g = c.benchmark_group("extended_search_ksweep");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for &k in &[1usize, 4, 16] {
        g.bench_function(format!("k={k}"), |b| b.iter(|| run_with_k(k, 8002)));
    }
    g.finish();
}

criterion_group!(benches, ksweep);
criterion_main!(benches);
