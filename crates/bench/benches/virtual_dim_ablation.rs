//! Experiment A-virt — Section 3.2's design choice: the virtual dimension.
//! "Whenever a new node joins ..., a representative point ... is generated
//! by combining the resource capabilities of the node and a randomly
//! generated virtual dimension value. Therefore, even when multiple
//! identical nodes join the system, they are mapped to distinct locations."
//!
//! The ablation runs basic CAN with and without the virtual dimension on a
//! clustered workload (identical nodes, identical jobs) and reports the
//! wait-time spread and ownership fairness that the virtual dimension buys.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dgrid::harness::Algorithm;
use dgrid::workloads::PaperScenario;
use dgrid_bench::bench_cell;

fn virtual_dim_ablation(c: &mut Criterion) {
    eprintln!("--- A-virt: CAN with vs without the virtual dimension (clustered workload)");
    for alg in [Algorithm::Can, Algorithm::CanNoVirtualDim] {
        let r = bench_cell(alg, PaperScenario::ClusteredLight, 7001);
        eprintln!(
            "    {:<11} mean_wait={:>8.1}s std_wait={:>8.1}s fairness={:.3} completed={}",
            alg.label(),
            r.mean_wait(),
            r.std_wait(),
            r.load_fairness(),
            r.jobs_completed,
        );
    }

    let mut g = c.benchmark_group("virtual_dim_ablation");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for alg in [Algorithm::Can, Algorithm::CanNoVirtualDim] {
        g.bench_function(alg.label(), |b| {
            b.iter(|| bench_cell(alg, PaperScenario::ClusteredLight, 7002))
        });
    }
    g.finish();
}

criterion_group!(benches, virtual_dim_ablation);
criterion_main!(benches);
