//! Experiment T-faults — the fault-injection matrix: how each matchmaking
//! scheme degrades as the network gets lossier, with no node ever failing.
//! All degradation comes from lost messages: spurious failure detections,
//! duplicate executions, retry backoff, and client resubmissions.
//!
//! Sweeps the per-message loss probability and reports completion rate and
//! which fault paths fired, then shows a partition scenario and times one
//! lossy simulation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dgrid::core::{ChurnConfig, FaultPlan};
use dgrid::harness::{paper_engine_config, run_workload_with_faults, Algorithm};
use dgrid::workloads::{paper_scenario, PaperScenario};

const NODES: usize = 64;
const JOBS: usize = 300;

fn lossy_run(alg: Algorithm, plan: FaultPlan, seed: u64) -> dgrid::core::SimReport {
    let workload = paper_scenario(PaperScenario::MixedLight, NODES, JOBS, seed);
    run_workload_with_faults(
        alg,
        &workload,
        paper_engine_config(seed),
        ChurnConfig::none(),
        plan,
    )
}

fn message_loss_sweep(c: &mut Criterion) {
    eprintln!("--- T-faults: loss-rate sweep ({NODES} nodes, {JOBS} jobs, no churn)");
    for &loss in &[0.0f64, 0.01, 0.05, 0.1, 0.2] {
        for alg in [Algorithm::RnTree, Algorithm::Can, Algorithm::Central] {
            let r = lossy_run(alg, FaultPlan::with_loss(loss), 7001);
            eprintln!(
                "    loss={loss:<4} {:<8} completion={:.3} lost={} spurious={} dup_exec={} \
                 run_rec={} resubmits={} lookup_retries={}",
                alg.label(),
                r.completion_rate(),
                r.messages_lost,
                r.spurious_detections,
                r.duplicate_executions,
                r.run_recoveries,
                r.client_resubmits,
                r.lookup_retries,
            );
        }
    }

    eprintln!("--- T-faults: partition (16 of {NODES} nodes cut off for 2000s)");
    let island: Vec<u32> = (0..16).collect();
    for alg in [Algorithm::RnTree, Algorithm::Central] {
        let plan = FaultPlan::with_loss(0.02).with_partition(500.0, 2_500.0, island.clone());
        let r = lossy_run(alg, plan, 7002);
        eprintln!(
            "    {:<8} completion={:.3} lost={} spurious={} resubmits={}",
            alg.label(),
            r.completion_rate(),
            r.messages_lost,
            r.spurious_detections,
            r.client_resubmits,
        );
    }

    let mut g = c.benchmark_group("message_loss_sweep");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    g.bench_function("rn-tree/loss=0.10", |b| {
        b.iter(|| lossy_run(Algorithm::RnTree, FaultPlan::with_loss(0.1), 7003))
    });
    g.finish();
}

criterion_group!(benches, message_loss_sweep);
criterion_main!(benches);
