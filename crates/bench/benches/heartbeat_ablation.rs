//! Experiment A-hb — Section 2's soft-state heartbeat design: "this
//! soft-state heartbeat message plays an important role in failure recovery
//! during the processing of jobs". The ablation sweeps the heartbeat
//! period under churn and quantifies the trade-off: fast heartbeats mean
//! fast failure detection (less recovery latency) but more messages; slow
//! heartbeats are cheap but leave interrupted jobs stranded for the whole
//! detection window.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dgrid::core::{ChurnConfig, EngineConfig};
use dgrid::harness::{run_workload, Algorithm};
use dgrid::workloads::{paper_scenario, PaperScenario};

fn hb_run(heartbeat_secs: f64, seed: u64) -> dgrid::core::SimReport {
    let workload = paper_scenario(PaperScenario::MixedLight, 64, 300, seed);
    let cfg = EngineConfig {
        seed,
        heartbeat_secs,
        heartbeat_misses: 3,
        client_resubmit_secs: (heartbeat_secs * 3.0 * 2.0).max(300.0),
        max_sim_secs: 3_000_000.0,
        ..EngineConfig::default()
    };
    let churn = ChurnConfig {
        mttf_secs: Some(3_000.0),
        rejoin_after_secs: Some(500.0),
        graceful_fraction: 0.0,
    };
    run_workload(Algorithm::RnTree, &workload, cfg, churn)
}

fn heartbeat_ablation(c: &mut Criterion) {
    eprintln!("--- A-hb: heartbeat period vs detection latency and message overhead");
    for &hb in &[2.0f64, 10.0, 30.0, 120.0] {
        let r = hb_run(hb, 9001);
        eprintln!(
            "    hb={hb:>5.0}s detection={:>4.0}s turnaround={:>7.1}s completion={:.3} hb_msgs={:>8}",
            hb * 3.0,
            r.turnaround.mean(),
            r.completion_rate(),
            r.heartbeat_messages,
        );
    }

    let mut g = c.benchmark_group("heartbeat_ablation");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    g.bench_function("hb=10s", |b| b.iter(|| hb_run(10.0, 9002)));
    g.finish();
}

criterion_group!(benches, heartbeat_ablation);
criterion_main!(benches);
