//! Experiment F2a/F2b — Figure 2(a): average job wait time and 2(b): its
//! standard deviation, for **clustered** workloads (lightly and heavily
//! constrained), comparing CAN, RN-Tree, and the centralized target.
//!
//! The regenerated series is printed before timing; the timed body is one
//! full bench-scale simulation per (scenario, algorithm) cell.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dgrid::harness::Algorithm;
use dgrid::workloads::PaperScenario;
use dgrid_bench::{bench_cell, print_series};

fn fig2_clustered(c: &mut Criterion) {
    let scenarios = [PaperScenario::ClusteredLight, PaperScenario::ClusteredHeavy];
    for scenario in scenarios {
        let reports: Vec<_> = Algorithm::FIGURE2
            .iter()
            .map(|&a| (a, bench_cell(a, scenario, 1077)))
            .collect();
        print_series(
            "Figure 2(a,b): wait time, clustered workloads",
            scenario,
            &reports,
        );
    }

    let mut g = c.benchmark_group("fig2_clustered");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for scenario in scenarios {
        for alg in Algorithm::FIGURE2 {
            g.bench_function(format!("{}/{}", scenario.label(), alg.label()), |b| {
                b.iter(|| bench_cell(alg, scenario, 1078))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig2_clustered);
criterion_main!(benches);
