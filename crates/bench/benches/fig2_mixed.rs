//! Experiment F2c/F2d — Figure 2(c): average job wait time and 2(d): its
//! standard deviation, for **mixed** workloads. The paper's headline
//! observation lives here: basic CAN degrades badly on the
//! lightly-constrained mixed case (origin-zone pile-up) while the RN-Tree
//! stays close to the centralized target.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dgrid::harness::Algorithm;
use dgrid::workloads::PaperScenario;
use dgrid_bench::{bench_cell, print_series};

fn fig2_mixed(c: &mut Criterion) {
    let scenarios = [PaperScenario::MixedLight, PaperScenario::MixedHeavy];
    for scenario in scenarios {
        let reports: Vec<_> = Algorithm::FIGURE2
            .iter()
            .map(|&a| (a, bench_cell(a, scenario, 2077)))
            .collect();
        print_series(
            "Figure 2(c,d): wait time, mixed workloads",
            scenario,
            &reports,
        );
    }

    let mut g = c.benchmark_group("fig2_mixed");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for scenario in scenarios {
        for alg in Algorithm::FIGURE2 {
            g.bench_function(format!("{}/{}", scenario.label(), alg.label()), |b| {
                b.iter(|| bench_cell(alg, scenario, 2078))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig2_mixed);
criterion_main!(benches);
