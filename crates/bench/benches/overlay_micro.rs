//! Micro-benchmarks of the substrate hot paths: Chord lookup, CAN routing,
//! RN-Tree candidate search, and the event queue. These back the overlay-
//! cost numbers in the macro experiments.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dgrid::can::{CanConfig, CanNetwork};
use dgrid::chord::{ChordId, ChordRing};
use dgrid::resources::{Capabilities, JobRequirements, OsType, ResourceKind};
use dgrid::rntree::RnTreeIndex;
use dgrid::sim::rng::{rng_for, streams};
use dgrid::sim::{EventQueue, SimTime};
use rand::Rng;
use std::collections::HashMap;

fn chord_ring(n: usize, seed: u64) -> (ChordRing, Vec<ChordId>) {
    let mut rng = rng_for(seed, streams::NODE_IDS);
    let mut ring = ChordRing::default();
    let mut ids = Vec::new();
    while ids.len() < n {
        let id = ChordId(rng.gen());
        if !ring.is_alive(id) {
            ring.join(id);
            ids.push(id);
        }
    }
    ring.stabilize();
    (ring, ids)
}

fn overlay_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlay_micro");
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    // Chord lookup on a 1024-node ring.
    let (ring, ids) = chord_ring(1024, 9001);
    let mut rng = rng_for(9002, 0);
    g.bench_function("chord_lookup/N=1024", |b| {
        b.iter(|| {
            let key = ChordId(rng.gen());
            let from = ids[rng.gen_range(0..ids.len())];
            black_box(ring.lookup(from, key))
        })
    });

    // CAN greedy route on a 512-node 4-d space.
    let mut net = CanNetwork::new(CanConfig {
        dims: 4,
        ..CanConfig::default()
    });
    let mut crng = rng_for(9003, 0);
    let can_ids: Vec<_> = (0..512)
        .map(|_| {
            let p: Vec<f64> = (0..4).map(|_| crng.gen::<f64>()).collect();
            net.join(&p)
        })
        .collect();
    g.bench_function("can_route/N=512", |b| {
        b.iter(|| {
            let target: Vec<f64> = (0..4).map(|_| crng.gen::<f64>()).collect();
            let from = can_ids[crng.gen_range(0..can_ids.len())];
            black_box(net.route(from, &target))
        })
    });

    // RN-Tree candidate search on a 1024-node tree.
    let caps: HashMap<u64, Capabilities> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            let c = Capabilities::new(
                0.5 + (i % 8) as f64 * 0.4,
                2f64.powi((i % 6) as i32 - 2),
                10.0 + (i % 50) as f64 * 9.0,
                OsType::Linux,
            );
            (id.0, c)
        })
        .collect();
    let index = RnTreeIndex::build(&ring, &caps);
    let req = JobRequirements::unconstrained()
        .with_min(ResourceKind::CpuSpeed, 2.0)
        .with_min(ResourceKind::Memory, 2.0);
    g.bench_function("rntree_search/N=1024/k=4", |b| {
        b.iter(|| {
            let owner = ids[rng.gen_range(0..ids.len())];
            black_box(index.find_candidates(owner.0, &req, 4))
        })
    });

    // Event queue schedule+pop throughput.
    g.bench_function("event_queue/schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_millis((i * 37) % 50_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });

    g.finish();
}

criterion_group!(benches, overlay_micro);
criterion_main!(benches);
