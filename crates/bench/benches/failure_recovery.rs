//! Experiment T-robust — Section 2's recovery protocol: "If either the
//! owner or run nodes fails, the other node will detect the failure and
//! initiate a recovery mechanism ... If both the owner and run node fail
//! before the recovery protocol completes, the client must resubmit."
//!
//! Sweeps node MTTF under churn (with repair) and reports completion rate
//! and which recovery paths fired, then times one churn-heavy simulation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dgrid::core::ChurnConfig;
use dgrid::harness::{paper_engine_config, run_workload, Algorithm};
use dgrid::workloads::{paper_scenario, PaperScenario};

fn churn_run(alg: Algorithm, mttf: f64, seed: u64) -> dgrid::core::SimReport {
    let workload = paper_scenario(PaperScenario::MixedLight, 64, 300, seed);
    let churn = ChurnConfig {
        mttf_secs: Some(mttf),
        rejoin_after_secs: Some(600.0),
        graceful_fraction: 0.0,
    };
    run_workload(alg, &workload, paper_engine_config(seed), churn)
}

fn failure_recovery(c: &mut Criterion) {
    eprintln!("--- T-robust: recovery under churn (64 nodes, 300 jobs, rejoin after 600s)");
    for &mttf in &[2_000.0f64, 8_000.0, 32_000.0] {
        for alg in [Algorithm::RnTree, Algorithm::Central] {
            let r = churn_run(alg, mttf, 5001);
            eprintln!(
                "    mttf={mttf:>7.0}s {:<8} completion={:.3} failures={} run_rec={} owner_rec={} resubmits={}",
                alg.label(),
                r.completion_rate(),
                r.node_failures,
                r.run_recoveries,
                r.owner_recoveries,
                r.client_resubmits,
            );
        }
    }

    let mut g = c.benchmark_group("failure_recovery");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    g.bench_function("rn-tree/mttf=8000", |b| {
        b.iter(|| churn_run(Algorithm::RnTree, 8_000.0, 5002))
    });
    g.finish();
}

criterion_group!(benches, failure_recovery);
criterion_main!(benches);
