//! Experiment S-dht — Section 2's substrate assumption: "we assume an
//! underlying Distributed Hash Table (DHT) infrastructure [17, 18, 19, 21]"
//! (CAN, Pastry, Chord, Tapestry). The grid's GUID → owner mapping only
//! needs insert/lookup, so the choice is a routing-cost trade-off. This
//! bench compares all four substrates, implemented from scratch in this
//! workspace, on identical membership: lookup hops (mean/p99) across system
//! sizes, and raw lookup throughput.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dgrid::can::{CanConfig, CanNetwork};
use dgrid::chord::{ChordId, ChordRing};
use dgrid::pastry::{PastryId, PastryNetwork};
use dgrid::sim::rng::{rng_for, streams};
use dgrid::tapestry::{TapestryId, TapestryNetwork};
use rand::Rng;

fn dht_faceoff(c: &mut Criterion) {
    eprintln!("--- S-dht: lookup cost by substrate (mean / p99 hops over 500 lookups)");
    for &n in &[64usize, 256, 1024] {
        let mut rng = rng_for(11_000 + n as u64, streams::NODE_IDS);

        // Chord.
        let mut ring = ChordRing::default();
        let mut chord_ids = Vec::new();
        while chord_ids.len() < n {
            let id = ChordId(rng.gen());
            if !ring.is_alive(id) {
                ring.join(id);
                chord_ids.push(id);
            }
        }
        ring.stabilize();

        // Pastry and Tapestry on the same identifier draws.
        let mut pastry = PastryNetwork::default();
        let mut tapestry = TapestryNetwork::default();
        let mut pastry_ids = Vec::new();
        for id in &chord_ids {
            pastry.join(PastryId(id.0));
            tapestry.join(TapestryId(id.0));
            pastry_ids.push(PastryId(id.0));
        }
        pastry.stabilize();
        tapestry.stabilize();

        // CAN (4-d, as the matchmaker uses).
        let mut can = CanNetwork::new(CanConfig {
            dims: 4,
            ..CanConfig::default()
        });
        let can_ids: Vec<_> = (0..n)
            .map(|_| {
                let p: Vec<f64> = (0..4).map(|_| rng.gen::<f64>()).collect();
                can.join(&p)
            })
            .collect();

        let trials = 500;
        let mut chord_hops = Vec::with_capacity(trials);
        let mut pastry_hops = Vec::with_capacity(trials);
        let mut tapestry_hops = Vec::with_capacity(trials);
        let mut can_hops = Vec::with_capacity(trials);
        for _ in 0..trials {
            let key: u64 = rng.gen();
            let from = rng.gen_range(0..n);
            chord_hops.push(ring.lookup(chord_ids[from], ChordId(key)).unwrap().hops as f64);
            pastry_hops.push(pastry.route(pastry_ids[from], PastryId(key)).unwrap().hops as f64);
            tapestry_hops.push(
                tapestry
                    .route(TapestryId(chord_ids[from].0), TapestryId(key))
                    .unwrap()
                    .hops as f64,
            );
            let target: Vec<f64> = (0..4).map(|_| rng.gen::<f64>()).collect();
            can_hops.push(can.route(can_ids[from], &target).unwrap().hops as f64);
        }
        let stats = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            (mean, v[(v.len() * 99) / 100])
        };
        let (cm, cp) = stats(chord_hops);
        let (pm, pp) = stats(pastry_hops);
        let (tm, tp) = stats(tapestry_hops);
        let (nm, np) = stats(can_hops);
        eprintln!(
            "    N={n:<5} chord={cm:>4.1}/{cp:<4.0} pastry={pm:>4.1}/{pp:<4.0} tapestry={tm:>4.1}/{tp:<4.0} can(4d)={nm:>4.1}/{np:<4.0}"
        );
    }

    let mut g = c.benchmark_group("dht_faceoff");
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let mut rng = rng_for(12_000, streams::NODE_IDS);
    let mut ring = ChordRing::default();
    let mut pastry = PastryNetwork::default();
    let mut ids = Vec::new();
    while ids.len() < 512 {
        let id: u64 = rng.gen();
        if !ring.is_alive(ChordId(id)) {
            ring.join(ChordId(id));
            pastry.join(PastryId(id));
            ids.push(id);
        }
    }
    ring.stabilize();
    pastry.stabilize();

    g.bench_function("chord_lookup/N=512", |b| {
        b.iter(|| {
            let key = ChordId(rng.gen());
            let from = ChordId(ids[rng.gen_range(0..ids.len())]);
            black_box(ring.lookup(from, key))
        })
    });
    g.bench_function("pastry_route/N=512", |b| {
        b.iter(|| {
            let key = PastryId(rng.gen());
            let from = PastryId(ids[rng.gen_range(0..ids.len())]);
            black_box(pastry.route(from, key))
        })
    });
    g.finish();
}

criterion_group!(benches, dht_faceoff);
criterion_main!(benches);
