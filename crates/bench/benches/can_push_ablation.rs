//! Experiment T-push — the paper's improved CAN: "pushing jobs into
//! underloaded regions of the CAN space based on dynamic aggregated load
//! information ... dramatically improves the quality of load balancing
//! compared to the basic scheme ..., still with low matchmaking cost."
//!
//! Compares basic CAN, CAN with pushing, and the centralized target on the
//! failure case (mixed population, lightly constrained jobs), reporting
//! wait-time statistics, load fairness, and hop cost.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dgrid::harness::Algorithm;
use dgrid::workloads::PaperScenario;
use dgrid_bench::bench_cell;

fn can_push_ablation(c: &mut Criterion) {
    eprintln!("--- T-push: improved CAN on the mixed/lightly-constrained failure case");
    for alg in [Algorithm::Can, Algorithm::CanPush, Algorithm::Central] {
        let r = bench_cell(alg, PaperScenario::MixedLight, 4001);
        eprintln!(
            "    {:<10} mean_wait={:>8.1}s std_wait={:>8.1}s fairness={:.3} hops={:>5.1}",
            alg.label(),
            r.mean_wait(),
            r.std_wait(),
            r.load_fairness(),
            r.match_hops.mean() + r.owner_hops.mean(),
        );
    }

    let mut g = c.benchmark_group("can_push_ablation");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for alg in [Algorithm::Can, Algorithm::CanPush] {
        g.bench_function(alg.label(), |b| {
            b.iter(|| bench_cell(alg, PaperScenario::MixedLight, 4002))
        });
    }
    g.finish();
}

criterion_group!(benches, can_push_ablation);
criterion_main!(benches);
