//! `repro` — regenerate every figure and quantitative claim of the paper.
//!
//! ```text
//! repro [EXPERIMENT] [--nodes N] [--jobs M] [--reps R] [--seed S]
//!       [--threads T] [--json PATH]
//!
//! EXPERIMENT: fig2 | fig2a | fig2b | fig2c | fig2d | hops | push | robust
//!           | tree | virt | ksweep | dht | dist | fair | overhead | tail | all
//! ```
//!
//! Default scale is the paper's (1000 nodes, 5000 jobs); pass smaller
//! `--nodes/--jobs` for a quick look. Results print as the paper-shaped
//! tables and can also be dumped as JSON rows for `EXPERIMENTS.md`.

use std::collections::BTreeMap;
use std::io::Write;

use dgrid::core::{ChurnConfig, Engine, RnTreeConfig, RnTreeMatchmaker};
use dgrid::harness::{paper_engine_config, run_cell, run_workload, Algorithm, CellResult};
use dgrid::workloads::{paper_scenario, PaperScenario};
use serde_json::Value;

#[derive(Clone, Debug)]
struct Opts {
    experiment: String,
    nodes: usize,
    jobs: usize,
    reps: usize,
    seed: u64,
    threads: Option<usize>,
    json: Option<String>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        experiment: "all".to_string(),
        nodes: 1000,
        jobs: 5000,
        reps: 3,
        seed: 42,
        threads: None,
        json: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => {
                opts.nodes = args[i + 1].parse().expect("--nodes N");
                i += 2;
            }
            "--jobs" => {
                opts.jobs = args[i + 1].parse().expect("--jobs M");
                i += 2;
            }
            "--reps" => {
                opts.reps = args[i + 1].parse().expect("--reps R");
                i += 2;
            }
            "--seed" => {
                opts.seed = args[i + 1].parse().expect("--seed S");
                i += 2;
            }
            "--threads" => {
                opts.threads = Some(args[i + 1].parse().expect("--threads T"));
                i += 2;
            }
            "--json" => {
                opts.json = Some(args[i + 1].clone());
                i += 2;
            }
            exp if !exp.starts_with('-') => {
                opts.experiment = exp.to_string();
                i += 1;
            }
            other => panic!("unknown flag {other}"),
        }
    }
    opts
}

/// One JSON output row: the cell's fields with an `experiment` tag merged in.
fn json_row(experiment: &str, cell: &CellResult) -> Value {
    let mut row = serde_json::to_value(cell).expect("cell serializes");
    if let Some(obj) = row.as_object_mut() {
        obj.insert("experiment".to_string(), Value::String(experiment.into()));
    }
    row
}

fn main() {
    let opts = parse_args();
    match opts.threads {
        // Replicated cells (`run_cell`) fan out over the work-stealing
        // pool; results are order-stable, so the tables are identical at
        // any thread count.
        Some(t) => rayon::Pool::install(t, || run(&opts)),
        None => run(&opts),
    }
}

fn run(opts: &Opts) {
    let mut json_rows: Vec<Value> = Vec::new();

    let want = |name: &str| opts.experiment == "all" || opts.experiment.starts_with(name);

    if want("fig2") || opts.experiment == "all" {
        fig2(opts, &mut json_rows);
    }
    if want("hops") {
        hops(opts);
    }
    if want("push") {
        push(opts, &mut json_rows);
    }
    if want("robust") {
        robust(opts);
    }
    if want("tree") {
        tree(opts);
    }
    if want("virt") {
        virt(opts, &mut json_rows);
    }
    if want("ksweep") {
        ksweep(opts);
    }
    if want("dht") {
        dht(opts);
    }
    if want("dist") {
        dist(opts);
    }
    if want("fair") {
        fair(opts);
    }
    if want("overhead") {
        overhead(opts);
    }
    if want("tail") {
        tail(opts);
    }

    if let Some(path) = &opts.json {
        let mut f = std::fs::File::create(path).expect("create json output");
        serde_json::to_writer_pretty(&mut f, &json_rows).expect("write json");
        writeln!(f).ok();
        eprintln!("wrote {} rows to {path}", json_rows.len());
    }
}

/// Figure 2, all four panels.
fn fig2(opts: &Opts, json: &mut Vec<Value>) {
    println!(
        "== Figure 2: job wait time ({} nodes, {} jobs, {} reps) ==",
        opts.nodes, opts.jobs, opts.reps
    );
    let mut table: BTreeMap<(String, String), CellResult> = BTreeMap::new();
    for scenario in PaperScenario::ALL {
        for alg in Algorithm::FIGURE2 {
            let cell = run_cell(alg, scenario, opts.nodes, opts.jobs, opts.seed, opts.reps);
            table.insert(
                (scenario.label().to_string(), alg.label().to_string()),
                cell.clone(),
            );
            json.push(json_row("fig2", &cell));
        }
    }
    for (panel, stat, clustered) in [
        ("2(a) avg wait, clustered", "mean", true),
        ("2(b) stdev wait, clustered", "std", true),
        ("2(c) avg wait, mixed", "mean", false),
        ("2(d) stdev wait, mixed", "std", false),
    ] {
        println!("-- Figure {panel} (seconds) --");
        println!(
            "{:<18} {:>10} {:>10} {:>10}",
            "workload", "can", "rn-tree", "central"
        );
        for scenario in PaperScenario::ALL {
            if scenario.clustered() != clustered {
                continue;
            }
            let get = |alg: &str| {
                let c = &table[&(scenario.label().to_string(), alg.to_string())];
                if stat == "mean" {
                    c.mean_wait
                } else {
                    c.std_wait
                }
            };
            println!(
                "{:<18} {:>10.1} {:>10.1} {:>10.1}",
                scenario.label(),
                get("can"),
                get("rn-tree"),
                get("central")
            );
        }
    }
    println!();
}

/// T-hops: matchmaking cost scaling.
fn hops(opts: &Opts) {
    println!("== T-hops: matchmaking cost in overlay hops ==");
    println!(
        "{:<8} {:<10} {:>12} {:>12} {:>12}",
        "N", "algorithm", "owner hops", "match hops", "p99 match"
    );
    for &n in &[64usize, 256, 1024, opts.nodes] {
        for alg in [Algorithm::Can, Algorithm::RnTree] {
            let workload =
                paper_scenario(PaperScenario::MixedHeavy, n, 2 * n, opts.seed + n as u64);
            let mut r = run_workload(
                alg,
                &workload,
                paper_engine_config(opts.seed),
                ChurnConfig::none(),
            );
            let (mean, p99) = r.hop_summary();
            println!(
                "{:<8} {:<10} {:>12.1} {:>12.1} {:>12.1}",
                n,
                alg.label(),
                r.owner_hops.mean(),
                mean,
                p99
            );
        }
    }
    println!();
}

/// T-push: the improved CAN on the failure case.
fn push(opts: &Opts, json: &mut Vec<Value>) {
    println!("== T-push: improved CAN on mixed/lightly-constrained ==");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>10}",
        "algorithm", "mean wait", "std wait", "fairness", "hops"
    );
    for alg in [Algorithm::Can, Algorithm::CanPush, Algorithm::Central] {
        let cell = run_cell(
            alg,
            PaperScenario::MixedLight,
            opts.nodes,
            opts.jobs,
            opts.seed,
            opts.reps,
        );
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>10.3} {:>10.1}",
            cell.algorithm,
            cell.mean_wait,
            cell.std_wait,
            cell.load_fairness,
            cell.mean_match_hops + cell.mean_owner_hops
        );
        json.push(json_row("push", &cell));
    }
    println!();
}

/// T-robust: the recovery protocol under churn.
fn robust(opts: &Opts) {
    println!("== T-robust: owner/run recovery under churn (rejoin after 600s) ==");
    println!(
        "{:<10} {:<10} {:>10} {:>9} {:>9} {:>10} {:>10}",
        "mttf (s)", "algorithm", "completion", "run rec", "own rec", "resubmits", "failures"
    );
    let nodes = opts.nodes.min(200); // churn runs are long; cap the scale
    let jobs = opts.jobs.min(1000);
    for &mttf in &[2_000.0f64, 8_000.0, 32_000.0] {
        for alg in [Algorithm::RnTree, Algorithm::Can, Algorithm::Central] {
            let workload = paper_scenario(PaperScenario::MixedLight, nodes, jobs, opts.seed);
            let churn = ChurnConfig {
                mttf_secs: Some(mttf),
                rejoin_after_secs: Some(600.0),
                graceful_fraction: 0.0,
            };
            let r = run_workload(alg, &workload, paper_engine_config(opts.seed), churn);
            println!(
                "{:<10} {:<10} {:>10.3} {:>9} {:>9} {:>10} {:>10}",
                mttf,
                alg.label(),
                r.completion_rate(),
                r.run_recoveries,
                r.owner_recoveries,
                r.client_resubmits,
                r.node_failures
            );
        }
    }
    println!();
}

/// T-tree: RN-Tree height scaling.
fn tree(opts: &Opts) {
    use dgrid::chord::{ChordId, ChordRing};
    use dgrid::rntree::RnTree;
    use dgrid::sim::rng::{rng_for, streams};
    use rand::Rng;

    println!("== T-tree: RN-Tree height vs log2(N) ==");
    println!(
        "{:<8} {:>8} {:>10} {:>16}",
        "N", "height", "log2(N)", "build hops/node"
    );
    for &n in &[64usize, 256, 1024, 4096, opts.nodes.max(8192)] {
        let mut rng = rng_for(opts.seed, streams::NODE_IDS ^ n as u64);
        let mut ring = ChordRing::default();
        let mut count = 0;
        while count < n {
            let id = ChordId(rng.gen());
            if !ring.is_alive(id) {
                ring.join(id);
                count += 1;
            }
        }
        ring.stabilize();
        let (tree, hops) = RnTree::build_counting(&ring);
        println!(
            "{:<8} {:>8} {:>10.1} {:>16.2}",
            n,
            tree.height(),
            (n as f64).log2(),
            hops as f64 / n as f64
        );
    }
    println!();
}

/// A-virt: the virtual dimension ablation.
fn virt(opts: &Opts, json: &mut Vec<Value>) {
    println!("== A-virt: CAN virtual dimension ablation (clustered/light) ==");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>11}",
        "algorithm", "mean wait", "std wait", "fairness", "completion"
    );
    for alg in [Algorithm::Can, Algorithm::CanNoVirtualDim] {
        let cell = run_cell(
            alg,
            PaperScenario::ClusteredLight,
            opts.nodes,
            opts.jobs,
            opts.seed,
            opts.reps,
        );
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>10.3} {:>11.3}",
            cell.algorithm, cell.mean_wait, cell.std_wait, cell.load_fairness, cell.completion_rate
        );
        json.push(json_row("virt", &cell));
    }
    println!();
}

/// S-dht: lookup cost per DHT substrate (Section 2's \[17,18,19,21\]).
fn dht(opts: &Opts) {
    use dgrid::can::{CanConfig, CanNetwork};
    use dgrid::chord::{ChordId, ChordRing};
    use dgrid::pastry::{PastryId, PastryNetwork};
    use dgrid::sim::rng::{rng_for, streams};
    use dgrid::tapestry::{TapestryId, TapestryNetwork};
    use rand::Rng;

    println!("== S-dht: lookup hops by substrate (mean / p99 over 1000 lookups) ==");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}",
        "N", "chord", "pastry", "tapestry", "can (4-d)"
    );
    for &n in &[64usize, 256, 1024, opts.nodes.max(2048)] {
        let mut rng = rng_for(opts.seed ^ n as u64, streams::NODE_IDS);
        let mut ring = ChordRing::default();
        let mut pastry = PastryNetwork::default();
        let mut tapestry = TapestryNetwork::default();
        let mut ids = Vec::new();
        while ids.len() < n {
            let id: u64 = rng.gen();
            if !ring.is_alive(ChordId(id)) {
                ring.join(ChordId(id));
                pastry.join(PastryId(id));
                tapestry.join(TapestryId(id));
                ids.push(id);
            }
        }
        ring.stabilize();
        pastry.stabilize();
        tapestry.stabilize();
        let mut can = CanNetwork::new(CanConfig {
            dims: 4,
            ..CanConfig::default()
        });
        let can_ids: Vec<_> = (0..n)
            .map(|_| {
                let p: Vec<f64> = (0..4).map(|_| rng.gen::<f64>()).collect();
                can.join(&p)
            })
            .collect();

        let trials = 1000;
        let (mut ch, mut pa, mut ta, mut cn) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for _ in 0..trials {
            let key: u64 = rng.gen();
            let from = rng.gen_range(0..n);
            ch.push(ring.lookup(ChordId(ids[from]), ChordId(key)).unwrap().hops as f64);
            pa.push(
                pastry
                    .route(PastryId(ids[from]), PastryId(key))
                    .unwrap()
                    .hops as f64,
            );
            ta.push(
                tapestry
                    .route(TapestryId(ids[from]), TapestryId(key))
                    .unwrap()
                    .hops as f64,
            );
            let target: Vec<f64> = (0..4).map(|_| rng.gen::<f64>()).collect();
            cn.push(can.route(can_ids[from], &target).unwrap().hops as f64);
        }
        let stats = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            format!("{mean:>6.1} / {:<4.0}", v[(v.len() * 99) / 100])
        };
        println!(
            "{:<8} {:>14} {:>14} {:>14} {:>14}",
            n,
            stats(ch),
            stats(pa),
            stats(ta),
            stats(cn)
        );
    }
    println!();
}

/// A-tail: heavy-tailed runtimes (bounded Pareto) vs the paper's
/// exponential model — stragglers amplify any load imbalance, so this
/// probes the robustness of each matchmaker's balancing.
fn tail(opts: &Opts) {
    use dgrid::workloads::{RuntimeDistribution, WorkloadConfig};
    println!("== A-tail: runtime distribution robustness (mixed/light population) ==");
    println!(
        "{:<10} {:<14} {:>12} {:>12} {:>10}",
        "algorithm", "runtimes", "mean wait", "p99 wait", "fairness"
    );
    for dist in [
        RuntimeDistribution::Fixed,
        RuntimeDistribution::Exponential,
        RuntimeDistribution::Pareto { alpha: 1.8 },
    ] {
        for alg in [Algorithm::RnTree, Algorithm::Can, Algorithm::Central] {
            let workload = WorkloadConfig {
                seed: opts.seed,
                nodes: opts.nodes,
                jobs: opts.jobs,
                mean_interarrival_secs: 0.1 * 1000.0 / opts.nodes as f64,
                runtime_distribution: dist,
                ..WorkloadConfig::default()
            }
            .generate();
            let mut r = run_workload(
                alg,
                &workload,
                paper_engine_config(opts.seed),
                ChurnConfig::none(),
            );
            let p99 = r.wait_time.percentile(99.0).unwrap_or(0.0);
            println!(
                "{:<10} {:<14} {:>11.1}s {:>11.1}s {:>10.3}",
                alg.label(),
                format!("{dist:?}").split(' ').next().unwrap_or("?"),
                r.mean_wait(),
                p99,
                r.load_fairness(),
            );
        }
    }
    println!();
}

/// T-overhead: the total message price of decentralization — every
/// application-level message (owner routing, matchmaking, transfers,
/// results, heartbeats), per completed job, P2P vs the central server.
fn overhead(opts: &Opts) {
    println!("== T-overhead: application messages per completed job (mixed/heavy) ==");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "algorithm", "owner", "matching", "heartbeat", "total/job", "mean wait"
    );
    for alg in [
        Algorithm::Central,
        Algorithm::RnTree,
        Algorithm::Can,
        Algorithm::CanPush,
    ] {
        let workload = paper_scenario(PaperScenario::MixedHeavy, opts.nodes, opts.jobs, opts.seed);
        let r = run_workload(
            alg,
            &workload,
            paper_engine_config(opts.seed),
            ChurnConfig::none(),
        );
        let per_job = |x: f64| x / r.jobs_completed.max(1) as f64;
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>10.1} {:>12.1} {:>11.1}s",
            alg.label(),
            per_job(r.owner_hops.samples().iter().sum()),
            per_job(r.match_hops.samples().iter().sum()),
            per_job(r.heartbeat_messages as f64),
            r.messages_per_job(),
            r.mean_wait(),
        );
    }
    println!();
}

/// T-fair: Section 5's open fairness problem, quantified. One parameter-
/// sweep client submits 80% of all jobs; per-job waits stay even (FIFO run
/// queues do not discriminate) but the heavy client absorbs most of the
/// grid's throughput — the allocation question the paper leaves open.
fn fair(opts: &Opts) {
    use dgrid::workloads::{ClientDemand, WorkloadConfig};
    println!("== T-fair: one heavy client (80% of jobs) vs 15 light clients ==");
    println!(
        "{:<10} {:>12} {:>12} {:>15} {:>12}",
        "algorithm", "heavy wait", "light wait", "heavy jobs done", "jain(wait)"
    );
    for alg in [Algorithm::Central, Algorithm::RnTree, Algorithm::Can] {
        let workload = WorkloadConfig {
            seed: opts.seed,
            nodes: opts.nodes,
            jobs: opts.jobs,
            mean_interarrival_secs: 0.1 * 1000.0 / opts.nodes as f64,
            client_demand: ClientDemand::Skewed { heavy_share: 0.8 },
            ..WorkloadConfig::default()
        }
        .generate();
        let r = run_workload(
            alg,
            &workload,
            paper_engine_config(opts.seed),
            ChurnConfig::none(),
        );
        let heavy = r.client_waits.get(&0).map(|s| s.mean()).unwrap_or(0.0);
        let light_means: Vec<f64> = r
            .client_waits
            .iter()
            .filter(|(&c, _)| c != 0)
            .map(|(_, s)| s.mean())
            .collect();
        let light = light_means.iter().sum::<f64>() / light_means.len().max(1) as f64;
        let heavy_done = r.client_waits.get(&0).map(|s| s.count()).unwrap_or(0);
        println!(
            "{:<10} {:>11.1}s {:>11.1}s {:>9}/{:<5} {:>12.3}",
            alg.label(),
            heavy,
            light,
            heavy_done,
            r.jobs_completed,
            r.client_fairness()
        );
    }
    println!();
}

/// Wait-time distributions (log2 buckets), the fine-grained view behind
/// Figure 2's mean/stdev pairs.
fn dist(opts: &Opts) {
    use dgrid::sim::hist::LogHistogram;
    println!("== wait-time distribution, mixed/light (buckets: [0,1s), [1,2s), [2,4s), ...) ==");
    for alg in Algorithm::FIGURE2 {
        let workload = paper_scenario(PaperScenario::MixedLight, opts.nodes, opts.jobs, opts.seed);
        let r = run_workload(
            alg,
            &workload,
            paper_engine_config(opts.seed),
            ChurnConfig::none(),
        );
        let mut h = LogHistogram::new(1.0);
        for &w in r.wait_time.samples() {
            h.record(w);
        }
        println!(
            "{:<10} p50≤{:>7.0}s p90≤{:>7.0}s p99≤{:>7.0}s  |{}|",
            alg.label(),
            h.quantile(0.5).unwrap_or(0.0),
            h.quantile(0.9).unwrap_or(0.0),
            h.quantile(0.99).unwrap_or(0.0),
            h.sparkline(),
        );
    }
    println!();
}

/// A-k: extended-search width sweep.
fn ksweep(opts: &Opts) {
    println!("== A-k: extended search width (rn-tree, mixed/light) ==");
    println!(
        "{:<6} {:>12} {:>12} {:>12}",
        "k", "mean wait", "std wait", "match hops"
    );
    for &k in &[1usize, 2, 4, 8, 16] {
        let workload = paper_scenario(PaperScenario::MixedLight, opts.nodes, opts.jobs, opts.seed);
        let mm = Box::new(RnTreeMatchmaker::new(RnTreeConfig {
            k,
            ..RnTreeConfig::default()
        }));
        let r = Engine::new(
            paper_engine_config(opts.seed),
            ChurnConfig::none(),
            mm,
            workload.nodes,
            workload.submissions,
        )
        .run();
        println!(
            "{:<6} {:>12.1} {:>12.1} {:>12.1}",
            k,
            r.mean_wait(),
            r.std_wait(),
            r.match_hops.mean()
        );
    }
    println!();
}
