//! `observer_guard` — CI guard that the default (NullObserver) engine path
//! stays telemetry-free.
//!
//! ```text
//! observer_guard [--baseline PATH] [--write-baseline]
//!                [--nodes N] [--jobs M] [--seed S] [--reps R] [--factor F]
//! ```
//!
//! Two checks, one exact and one timed:
//!
//! 1. **Fingerprint (exact, noise-free).** The simulation is deterministic,
//!    so the report of a default-path run must be byte-identical JSON to the
//!    report of a fully instrumented run (JSONL observer to a sink, metrics
//!    registry, time-series sampling) once the attached series is removed.
//!    If the default path ever starts paying for telemetry — scheduling
//!    sample events, drawing RNG, mutating state — this diverges and the
//!    guard fails hard, independent of machine speed.
//! 2. **Wall time (pinned baseline).** The median default-path run time over
//!    `--reps` repetitions must stay within `factor ×` the pinned baseline
//!    (`results/observer_guard_baseline.json` by default). The factor is
//!    deliberately generous (machines and CI runners vary); override it with
//!    `--factor` or the `DGRID_GUARD_FACTOR` env var. `--write-baseline`
//!    re-pins the baseline on the current machine — CI writes a fresh
//!    baseline first so the comparison is same-machine.
//!
//! The instrumented-path median is also measured and printed so the cost of
//! telemetry *when enabled* is visible in every CI log, and a third check
//! compares the two stream writers: [`BinaryObserver`] must write strictly
//! fewer bytes than [`JsonlObserver`] and must not be slower beyond a small
//! tolerance — the binary format exists to make tracing cheaper, and this
//! guard keeps that claim honest.

use std::time::Instant;

use dgrid::core::{BinaryObserver, ChurnConfig, Engine, EngineConfig, JsonlObserver, SimReport};
use dgrid::harness::Algorithm;
use dgrid::sim::telemetry::shared_registry;
use dgrid::sim::SimDuration;
use dgrid::workloads::{paper_scenario, PaperScenario, Workload};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug)]
struct Opts {
    baseline: String,
    write_baseline: bool,
    nodes: usize,
    jobs: usize,
    seed: u64,
    reps: usize,
    factor: f64,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        baseline: "results/observer_guard_baseline.json".to_string(),
        write_baseline: false,
        nodes: 96,
        jobs: 400,
        seed: 42,
        reps: 5,
        factor: std::env::var("DGRID_GUARD_FACTOR")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(4.0),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                opts.baseline = args[i + 1].clone();
                i += 2;
            }
            "--write-baseline" => {
                opts.write_baseline = true;
                i += 1;
            }
            "--nodes" => {
                opts.nodes = args[i + 1].parse().expect("--nodes N");
                i += 2;
            }
            "--jobs" => {
                opts.jobs = args[i + 1].parse().expect("--jobs M");
                i += 2;
            }
            "--seed" => {
                opts.seed = args[i + 1].parse().expect("--seed S");
                i += 2;
            }
            "--reps" => {
                opts.reps = args[i + 1].parse().expect("--reps R");
                i += 2;
            }
            "--factor" => {
                opts.factor = args[i + 1].parse().expect("--factor F");
                i += 2;
            }
            other => panic!("unknown flag {other}"),
        }
    }
    opts
}

#[derive(Serialize, Deserialize)]
struct Baseline {
    nodes: usize,
    jobs: usize,
    seed: u64,
    reps: usize,
    null_path_ms: f64,
}

fn engine(opts: &Opts, workload: &Workload) -> Engine {
    let cfg = EngineConfig {
        seed: opts.seed,
        max_sim_secs: 3_000_000.0,
        ..EngineConfig::default()
    };
    Engine::new(
        cfg,
        ChurnConfig::none(),
        Algorithm::RnTree.matchmaker(),
        workload.nodes.clone(),
        workload.submissions.clone(),
    )
}

fn median_ms(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Strip the payload that only exists when telemetry is on, then serialize.
fn fingerprint(mut report: SimReport) -> String {
    report.timeseries = None;
    report.stream_bytes_written = 0;
    serde_json::to_string(&report).expect("report serializes")
}

fn timed_null(opts: &Opts, workload: &Workload) -> (f64, String) {
    let mut times = Vec::with_capacity(opts.reps);
    let mut fp = String::new();
    for _ in 0..opts.reps {
        let eng = engine(opts, workload);
        let start = Instant::now();
        let report = eng.run();
        times.push(start.elapsed().as_secs_f64() * 1e3);
        fp = fingerprint(report);
    }
    (median_ms(times), fp)
}

fn timed_instrumented(opts: &Opts, workload: &Workload) -> (f64, String) {
    let mut times = Vec::with_capacity(opts.reps);
    let mut fp = String::new();
    for _ in 0..opts.reps {
        let eng = engine(opts, workload)
            .with_observer(Box::new(JsonlObserver::new(std::io::sink())))
            .with_telemetry_registry(shared_registry())
            .with_timeseries_sampling(SimDuration::from_secs(120));
        let start = Instant::now();
        let report = eng.run();
        times.push(start.elapsed().as_secs_f64() * 1e3);
        fp = fingerprint(report);
    }
    (median_ms(times), fp)
}

/// Median wall time and bytes written for a run streaming to `std::io::sink`
/// through the given observer constructor.
fn timed_stream(
    opts: &Opts,
    workload: &Workload,
    make: fn() -> Box<dyn dgrid::core::Observer>,
) -> (f64, u64, String) {
    let mut times = Vec::with_capacity(opts.reps);
    let mut bytes = 0;
    let mut fp = String::new();
    for _ in 0..opts.reps {
        let eng = engine(opts, workload).with_observer(make());
        let start = Instant::now();
        let report = eng.run();
        times.push(start.elapsed().as_secs_f64() * 1e3);
        bytes = report.stream_bytes_written;
        fp = fingerprint(report);
    }
    (median_ms(times), bytes, fp)
}

fn main() {
    let opts = parse_args();
    let workload = paper_scenario(PaperScenario::MixedLight, opts.nodes, opts.jobs, opts.seed);

    let (null_ms, null_fp) = timed_null(&opts, &workload);
    let (instr_ms, instr_fp) = timed_instrumented(&opts, &workload);

    println!(
        "observer_guard: {} nodes, {} jobs, seed {}, {} reps",
        opts.nodes, opts.jobs, opts.seed, opts.reps
    );
    println!("  null-observer path : median {null_ms:.1} ms");
    println!("  instrumented path  : median {instr_ms:.1} ms");

    // Check 1: telemetry observes, never perturbs (exact, machine-independent).
    if null_fp != instr_fp {
        eprintln!("FAIL: instrumented run diverged from the default path;");
        eprintln!("      telemetry must observe the simulation, not change it.");
        std::process::exit(1);
    }
    println!("  fingerprint        : identical (telemetry does not perturb)");

    // Check 3: the binary stream writer must be cheaper than JSONL — strictly
    // fewer bytes, and no slower beyond a noise tolerance (median over reps;
    // override with DGRID_STREAM_FACTOR).
    let (jsonl_ms, jsonl_bytes, jsonl_fp) = timed_stream(&opts, &workload, || {
        Box::new(JsonlObserver::new(std::io::sink()))
    });
    let (bin_ms, bin_bytes, bin_fp) = timed_stream(&opts, &workload, || {
        Box::new(BinaryObserver::new(std::io::sink()))
    });
    println!("  jsonl stream       : median {jsonl_ms:.1} ms, {jsonl_bytes} bytes");
    println!(
        "  binary stream      : median {bin_ms:.1} ms, {bin_bytes} bytes ({:.2}x smaller)",
        jsonl_bytes as f64 / bin_bytes.max(1) as f64
    );
    if jsonl_fp != null_fp || bin_fp != null_fp {
        eprintln!("FAIL: a stream observer perturbed the simulation");
        std::process::exit(1);
    }
    if bin_bytes >= jsonl_bytes {
        eprintln!(
            "FAIL: binary stream wrote {bin_bytes} bytes, not strictly fewer than JSONL's {jsonl_bytes}"
        );
        std::process::exit(1);
    }
    let stream_factor: f64 = std::env::var("DGRID_STREAM_FACTOR")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.25);
    if bin_ms > jsonl_ms * stream_factor {
        eprintln!(
            "FAIL: binary stream took {bin_ms:.1} ms, over {:.1} ms ({stream_factor:.2}x JSONL); \
             the binary observer must not cost more than JSONL",
            jsonl_ms * stream_factor
        );
        std::process::exit(1);
    }

    if opts.write_baseline {
        let baseline = Baseline {
            nodes: opts.nodes,
            jobs: opts.jobs,
            seed: opts.seed,
            reps: opts.reps,
            null_path_ms: null_ms,
        };
        let body = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
        std::fs::write(&opts.baseline, body + "\n").expect("write baseline file");
        println!("  baseline pinned    : {} ({null_ms:.1} ms)", opts.baseline);
        return;
    }

    // Check 2: wall time against the pinned baseline.
    let body = std::fs::read_to_string(&opts.baseline).unwrap_or_else(|e| {
        panic!(
            "read baseline {}: {e} (try --write-baseline)",
            opts.baseline
        )
    });
    let baseline: Baseline = serde_json::from_str(&body).expect("parse baseline file");
    if (baseline.nodes, baseline.jobs, baseline.seed) != (opts.nodes, opts.jobs, opts.seed) {
        eprintln!(
            "FAIL: baseline {} was pinned for {} nodes / {} jobs / seed {}; re-pin with --write-baseline",
            opts.baseline, baseline.nodes, baseline.jobs, baseline.seed
        );
        std::process::exit(1);
    }
    let budget = baseline.null_path_ms * opts.factor;
    println!(
        "  budget             : {budget:.1} ms ({:.1} ms pinned x {:.1})",
        baseline.null_path_ms, opts.factor
    );
    if null_ms > budget {
        eprintln!(
            "FAIL: null-observer path took {null_ms:.1} ms, over budget {budget:.1} ms; \
             the default path must stay telemetry-free"
        );
        std::process::exit(1);
    }
    println!("  verdict            : OK");
}
