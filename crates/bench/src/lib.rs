//! Shared helpers for the benchmark suite and the `repro` binary.
//!
//! Each Criterion bench regenerates one experiment row from `DESIGN.md` at
//! a reduced scale (so `cargo bench` terminates in minutes) and prints the
//! figure's data series once before timing; the `repro` binary runs the
//! full-scale configurations and emits the tables recorded in
//! `EXPERIMENTS.md`.

use dgrid::core::SimReport;
use dgrid::harness::{run_scenario, Algorithm};
use dgrid::workloads::PaperScenario;

/// Scale used inside Criterion benches: small enough to iterate, large
/// enough that the paper's qualitative ordering already shows.
pub const BENCH_NODES: usize = 96;
/// Jobs per bench-scale run.
pub const BENCH_JOBS: usize = 400;

/// Run a bench-scale cell once.
pub fn bench_cell(algorithm: Algorithm, scenario: PaperScenario, seed: u64) -> SimReport {
    run_scenario(algorithm, scenario, BENCH_NODES, BENCH_JOBS, seed)
}

/// Print one figure row (used by benches so `cargo bench` output contains
/// the regenerated series).
pub fn print_series(figure: &str, scenario: PaperScenario, reports: &[(Algorithm, SimReport)]) {
    eprintln!(
        "--- {figure} [{}] (bench scale: {BENCH_NODES} nodes, {BENCH_JOBS} jobs)",
        scenario.label()
    );
    for (alg, r) in reports {
        eprintln!(
            "    {:<10} mean_wait={:>8.1}s std_wait={:>8.1}s hops={:>5.1} completed={}",
            alg.label(),
            r.mean_wait(),
            r.std_wait(),
            r.match_hops.mean() + r.owner_hops.mean(),
            r.jobs_completed,
        );
    }
}
