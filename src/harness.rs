//! One-call experiment harness.
//!
//! Everything the examples, integration tests, and benchmark binaries need
//! to run a paper experiment: pick an [`Algorithm`], a
//! [`PaperScenario`] (or a custom
//! workload), and get back a [`SimReport`]. Replicated runs fan out over
//! rayon — each replication is an independent, deterministic simulation
//! with its own seed, so parallelism never changes results.

use dgrid_core::router::{PastryNetwork, TapestryNetwork};
use dgrid_core::{
    CanMatchmaker, CanMmConfig, CentralizedMatchmaker, ChurnConfig, Engine, EngineConfig,
    FaultPlan, Matchmaker, PubSubMatchmaker, RnTreeConfig, RnTreeMatchmaker, SimReport,
};
use dgrid_resources::ResourceSpace;
use dgrid_workloads::{paper_scenario, PaperScenario, Workload};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The matchmaking algorithms under evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Rendezvous Node Tree over Chord (Section 3.1).
    RnTree,
    /// Rendezvous Node Tree over a Pastry substrate (overlay ablation).
    RnTreePastry,
    /// Rendezvous Node Tree over a Tapestry substrate (overlay ablation).
    RnTreeTapestry,
    /// Basic CAN matchmaking with the virtual dimension (Section 3.2).
    Can,
    /// Improved CAN with load pushing (Section 3.3's ongoing work).
    CanPush,
    /// Basic CAN *without* the virtual dimension (ablation `A-virt`).
    CanNoVirtualDim,
    /// Omniscient centralized baseline (the paper's load-balance target).
    Central,
    /// Publish/subscribe resource discovery (the Abbes et al. baseline):
    /// advertisement table + predicate-keyed subscriptions over rendezvous
    /// brokers.
    PubSub,
}

impl Algorithm {
    /// The three algorithms Figure 2 compares.
    pub const FIGURE2: [Algorithm; 3] = [Algorithm::Can, Algorithm::RnTree, Algorithm::Central];

    /// The RN-Tree matchmaker on every overlay substrate (experiment
    /// `T-overlay`).
    pub const OVERLAYS: [Algorithm; 3] = [
        Algorithm::RnTree,
        Algorithm::RnTreePastry,
        Algorithm::RnTreeTapestry,
    ];

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::RnTree => "rn-tree",
            Algorithm::RnTreePastry => "rn-tree@pastry",
            Algorithm::RnTreeTapestry => "rn-tree@tapestry",
            Algorithm::Can => "can",
            Algorithm::CanPush => "can-push",
            Algorithm::CanNoVirtualDim => "can-novirt",
            Algorithm::Central => "central",
            Algorithm::PubSub => "pub-sub",
        }
    }

    /// Instantiate the matchmaker.
    pub fn matchmaker(self) -> Box<dyn Matchmaker> {
        match self {
            Algorithm::RnTree => Box::new(RnTreeMatchmaker::new(RnTreeConfig::default())),
            Algorithm::RnTreePastry => Box::new(RnTreeMatchmaker::<PastryNetwork>::on_substrate(
                RnTreeConfig::default(),
            )),
            Algorithm::RnTreeTapestry => Box::new(
                RnTreeMatchmaker::<TapestryNetwork>::on_substrate(RnTreeConfig::default()),
            ),
            Algorithm::Can => Box::new(CanMatchmaker::with_defaults()),
            Algorithm::CanPush => Box::new(CanMatchmaker::with_push()),
            Algorithm::CanNoVirtualDim => Box::new(CanMatchmaker::new(
                CanMmConfig {
                    virtual_dim: false,
                    ..CanMmConfig::default()
                },
                ResourceSpace::default_desktop(),
            )),
            Algorithm::Central => Box::new(CentralizedMatchmaker::new()),
            Algorithm::PubSub => Box::new(PubSubMatchmaker::new()),
        }
    }
}

/// Engine configuration used by all paper experiments (failure-free; the
/// robustness experiment overrides churn separately).
pub fn paper_engine_config(seed: u64) -> EngineConfig {
    EngineConfig {
        seed,
        max_sim_secs: 1_000_000.0,
        ..EngineConfig::default()
    }
}

/// Run one algorithm over one pre-built workload.
pub fn run_workload(
    algorithm: Algorithm,
    workload: &Workload,
    cfg: EngineConfig,
    churn: ChurnConfig,
) -> SimReport {
    let engine = Engine::new(
        cfg,
        churn,
        algorithm.matchmaker(),
        workload.nodes.clone(),
        workload.submissions.clone(),
    );
    engine.run()
}

/// Like [`run_workload`], but with a deterministic network [`FaultPlan`]
/// installed (message loss, partitions, latency spikes, scheduled crashes).
/// An empty plan reproduces [`run_workload`] bit for bit.
pub fn run_workload_with_faults(
    algorithm: Algorithm,
    workload: &Workload,
    cfg: EngineConfig,
    churn: ChurnConfig,
    plan: FaultPlan,
) -> SimReport {
    Engine::new(
        cfg,
        churn,
        algorithm.matchmaker(),
        workload.nodes.clone(),
        workload.submissions.clone(),
    )
    .with_fault_plan(plan)
    .run()
}

/// Run one algorithm over one paper quadrant at the given scale.
pub fn run_scenario(
    algorithm: Algorithm,
    scenario: PaperScenario,
    nodes: usize,
    jobs: usize,
    seed: u64,
) -> SimReport {
    let workload = paper_scenario(scenario, nodes, jobs, seed);
    run_workload(
        algorithm,
        &workload,
        paper_engine_config(seed),
        ChurnConfig::none(),
    )
}

/// Aggregated results of replicated runs of one (algorithm, scenario) cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// Algorithm label.
    pub algorithm: String,
    /// Scenario label.
    pub scenario: String,
    /// Mean of per-replication mean wait times, seconds.
    pub mean_wait: f64,
    /// Mean of per-replication wait-time standard deviations, seconds.
    pub std_wait: f64,
    /// Mean matchmaking hops per job.
    pub mean_match_hops: f64,
    /// Mean owner-routing hops per job.
    pub mean_owner_hops: f64,
    /// Average completion rate.
    pub completion_rate: f64,
    /// Average Jain fairness of executed work across nodes.
    pub load_fairness: f64,
    /// Number of replications aggregated.
    pub replications: usize,
}

/// Run `replications` independent seeds of one cell in parallel and average
/// the reported metrics (the paper's figures are averages over runs).
pub fn run_cell(
    algorithm: Algorithm,
    scenario: PaperScenario,
    nodes: usize,
    jobs: usize,
    base_seed: u64,
    replications: usize,
) -> CellResult {
    assert!(replications >= 1);
    let reports: Vec<SimReport> = (0..replications as u64)
        .into_par_iter()
        .map(|r| run_scenario(algorithm, scenario, nodes, jobs, base_seed ^ (r + 1)))
        .collect();
    let n = reports.len() as f64;
    CellResult {
        algorithm: algorithm.label().to_string(),
        scenario: scenario.label().to_string(),
        mean_wait: reports.iter().map(SimReport::mean_wait).sum::<f64>() / n,
        std_wait: reports.iter().map(SimReport::std_wait).sum::<f64>() / n,
        mean_match_hops: reports.iter().map(|r| r.match_hops.mean()).sum::<f64>() / n,
        mean_owner_hops: reports.iter().map(|r| r.owner_hops.mean()).sum::<f64>() / n,
        completion_rate: reports.iter().map(SimReport::completion_rate).sum::<f64>() / n,
        load_fairness: reports.iter().map(SimReport::load_fairness).sum::<f64>() / n,
        replications,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> = [
            Algorithm::RnTree,
            Algorithm::RnTreePastry,
            Algorithm::RnTreeTapestry,
            Algorithm::Can,
            Algorithm::CanPush,
            Algorithm::CanNoVirtualDim,
            Algorithm::Central,
            Algorithm::PubSub,
        ]
        .iter()
        .map(|a| a.label())
        .collect();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn cell_aggregation_runs_in_parallel_deterministically() {
        let a = run_cell(
            Algorithm::Central,
            PaperScenario::ClusteredLight,
            32,
            100,
            9,
            2,
        );
        let b = run_cell(
            Algorithm::Central,
            PaperScenario::ClusteredLight,
            32,
            100,
            9,
            2,
        );
        assert_eq!(a.mean_wait, b.mean_wait);
        assert_eq!(a.std_wait, b.std_wait);
        assert!(a.completion_rate > 0.99);
    }
}
