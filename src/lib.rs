//! # dgrid — a robust desktop grid built on peer-to-peer services
//!
//! A from-scratch Rust reproduction of *"Creating a Robust Desktop Grid
//! using Peer-to-Peer Services"* (Kim, Nam, Marsh, Keleher, Bhattacharjee,
//! Richardson, Wellnitz, Sussman — IPPS/IPDPS 2007): a decentralized job
//! submission and execution system in which peers pool idle resources,
//! matchmaking runs over DHT overlays instead of a central server, and the
//! owner/run-node pair replicates job state for failure recovery.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `dgrid-sim` | deterministic discrete-event kernel, RNG streams, statistics |
//! | [`resources`] | `dgrid-resources` | capability vectors, job profiles, the matching predicate |
//! | [`chord`] | `dgrid-chord` | Chord DHT: ring, fingers, successor lists, lookup, churn |
//! | [`pastry`] | `dgrid-pastry` | Pastry DHT: leaf sets, prefix routing tables |
//! | [`tapestry`] | `dgrid-tapestry` | Tapestry DHT: neighbor maps, surrogate routing |
//! | [`can`] | `dgrid-can` | CAN DHT: zones, splits, takeover, greedy routing |
//! | [`rntree`] | `dgrid-rntree` | the Rendezvous Node Tree and its pruned candidate search |
//! | [`core`] | `dgrid-core` | the grid engine, recovery protocol, and the three matchmakers |
//! | [`workloads`] | `dgrid-workloads` | the paper's clustered/mixed × light/heavy workload grid |
//! | [`harness`] | (here) | one-call experiment runner used by examples, tests, and benches |
//!
//! ## Quickstart
//!
//! ```
//! use dgrid::harness::{run_scenario, Algorithm};
//! use dgrid::workloads::PaperScenario;
//!
//! // A small instance of the paper's mixed/lightly-constrained workload,
//! // matched by the RN-Tree algorithm.
//! let report = run_scenario(Algorithm::RnTree, PaperScenario::MixedLight, 64, 256, 42);
//! assert_eq!(report.jobs_completed, 256);
//! println!("mean wait {:.1}s over {} jobs", report.mean_wait(), report.jobs_completed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dgrid_can as can;
pub use dgrid_check as check;
pub use dgrid_chord as chord;
pub use dgrid_core as core;
pub use dgrid_pastry as pastry;
pub use dgrid_resources as resources;
pub use dgrid_rntree as rntree;
pub use dgrid_sim as sim;
pub use dgrid_tapestry as tapestry;
pub use dgrid_workloads as workloads;

pub mod harness;
