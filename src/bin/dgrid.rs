//! `dgrid` — command-line front end for the desktop-grid simulator.
//!
//! ```text
//! dgrid run     --algorithm rn-tree --scenario mixed/light [options]
//! dgrid compare --scenario clustered/heavy [options]
//!
//! options:
//!   --nodes N          grid size                      (default 200)
//!   --jobs M           job count                      (default 1000)
//!   --seed S           root seed                      (default 42)
//!   --mttf SECS        enable churn with this MTTF
//!   --rejoin SECS      repair time after a departure
//!   --graceful FRAC    fraction of graceful departures (default 0)
//!   --k K              rn-tree extended-search width   (default 4)
//!   --json PATH        also write the full report(s) as JSON
//! ```
//!
//! `run` executes one cell and prints the report; `compare` runs every
//! algorithm on the same workload and prints a comparison table.

use dgrid::core::{
    ChurnConfig, Engine, EngineConfig, RnTreeConfig, RnTreeMatchmaker, SimReport,
};
use dgrid::harness::Algorithm;
use dgrid::workloads::{paper_scenario, PaperScenario, Workload};

#[derive(Clone, Debug)]
struct Opts {
    command: String,
    algorithm: Algorithm,
    scenario: PaperScenario,
    nodes: usize,
    jobs: usize,
    seed: u64,
    mttf: Option<f64>,
    rejoin: Option<f64>,
    graceful: f64,
    k: usize,
    json: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dgrid <run|compare> [--algorithm A] [--scenario S] [--nodes N] \
         [--jobs M] [--seed S] [--mttf SECS] [--rejoin SECS] [--graceful FRAC] \
         [--k K] [--json PATH]\n\
         algorithms: rn-tree can can-push can-novirt central\n\
         scenarios : clustered/light clustered/heavy mixed/light mixed/heavy"
    );
    std::process::exit(2)
}

fn parse_algorithm(s: &str) -> Algorithm {
    match s {
        "rn-tree" | "rntree" => Algorithm::RnTree,
        "can" => Algorithm::Can,
        "can-push" => Algorithm::CanPush,
        "can-novirt" => Algorithm::CanNoVirtualDim,
        "central" | "centralized" => Algorithm::Central,
        _ => usage(),
    }
}

fn parse_scenario(s: &str) -> PaperScenario {
    match s {
        "clustered/light" => PaperScenario::ClusteredLight,
        "clustered/heavy" => PaperScenario::ClusteredHeavy,
        "mixed/light" => PaperScenario::MixedLight,
        "mixed/heavy" => PaperScenario::MixedHeavy,
        _ => usage(),
    }
}

fn parse() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut opts = Opts {
        command: args[0].clone(),
        algorithm: Algorithm::RnTree,
        scenario: PaperScenario::MixedLight,
        nodes: 200,
        jobs: 1000,
        seed: 42,
        mttf: None,
        rejoin: None,
        graceful: 0.0,
        k: 4,
        json: None,
    };
    if opts.command != "run" && opts.command != "compare" {
        usage();
    }
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let val = args.get(i + 1).unwrap_or_else(|| usage()).clone();
        match flag {
            "--algorithm" => opts.algorithm = parse_algorithm(&val),
            "--scenario" => opts.scenario = parse_scenario(&val),
            "--nodes" => opts.nodes = val.parse().unwrap_or_else(|_| usage()),
            "--jobs" => opts.jobs = val.parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = val.parse().unwrap_or_else(|_| usage()),
            "--mttf" => opts.mttf = Some(val.parse().unwrap_or_else(|_| usage())),
            "--rejoin" => opts.rejoin = Some(val.parse().unwrap_or_else(|_| usage())),
            "--graceful" => opts.graceful = val.parse().unwrap_or_else(|_| usage()),
            "--k" => opts.k = val.parse().unwrap_or_else(|_| usage()),
            "--json" => opts.json = Some(val),
            _ => usage(),
        }
        i += 2;
    }
    opts
}

fn run_one(opts: &Opts, algorithm: Algorithm, workload: &Workload) -> SimReport {
    let cfg = EngineConfig {
        seed: opts.seed,
        max_sim_secs: 5_000_000.0,
        ..EngineConfig::default()
    };
    let churn = ChurnConfig {
        mttf_secs: opts.mttf,
        rejoin_after_secs: opts.rejoin,
        graceful_fraction: opts.graceful,
    };
    let mm = if algorithm == Algorithm::RnTree {
        Box::new(RnTreeMatchmaker::new(RnTreeConfig {
            k: opts.k,
            ..RnTreeConfig::default()
        })) as Box<dyn dgrid::core::Matchmaker>
    } else {
        algorithm.matchmaker()
    };
    Engine::new(cfg, churn, mm, workload.nodes.clone(), workload.submissions.clone()).run()
}

fn print_report(r: &SimReport) {
    println!("algorithm        : {}", r.algorithm);
    println!("jobs             : {} completed, {} failed of {}", r.jobs_completed, r.jobs_failed, r.jobs_total);
    println!("mean wait        : {:>10.1} s", r.mean_wait());
    println!("stdev wait       : {:>10.1} s", r.std_wait());
    println!("mean turnaround  : {:>10.1} s", r.turnaround.mean());
    println!("makespan         : {:>10.1} s", r.makespan_secs);
    println!("matchmaking cost : {:>10.1} hops/job", r.match_hops.mean() + r.owner_hops.mean());
    println!("load fairness    : {:>10.3}", r.load_fairness());
    println!("client fairness  : {:>10.3}", r.client_fairness());
    if r.node_failures + r.graceful_leaves > 0 {
        println!(
            "churn            : {} failures, {} graceful leaves",
            r.node_failures, r.graceful_leaves
        );
        println!(
            "recoveries       : {} run, {} owner, {} client resubmits",
            r.run_recoveries, r.owner_recoveries, r.client_resubmits
        );
    }
}

fn main() {
    let opts = parse();
    let workload = paper_scenario(opts.scenario, opts.nodes, opts.jobs, opts.seed);
    println!(
        "workload: {} — {} nodes, {} jobs, seed {}",
        opts.scenario.label(),
        opts.nodes,
        opts.jobs,
        opts.seed
    );
    println!();

    let mut reports = Vec::new();
    match opts.command.as_str() {
        "run" => {
            let r = run_one(&opts, opts.algorithm, &workload);
            print_report(&r);
            reports.push(r);
        }
        "compare" => {
            println!(
                "{:<12} {:>10} {:>10} {:>10} {:>10} {:>11}",
                "algorithm", "mean wait", "std wait", "hops/job", "fairness", "completion"
            );
            for alg in [
                Algorithm::Central,
                Algorithm::RnTree,
                Algorithm::Can,
                Algorithm::CanPush,
            ] {
                let r = run_one(&opts, alg, &workload);
                println!(
                    "{:<12} {:>9.1}s {:>9.1}s {:>10.1} {:>10.3} {:>10.1}%",
                    r.algorithm,
                    r.mean_wait(),
                    r.std_wait(),
                    r.match_hops.mean() + r.owner_hops.mean(),
                    r.load_fairness(),
                    100.0 * r.completion_rate(),
                );
                reports.push(r);
            }
        }
        _ => usage(),
    }

    if let Some(path) = &opts.json {
        let f = std::fs::File::create(path).expect("create json output");
        serde_json::to_writer_pretty(f, &reports).expect("write json");
        eprintln!("wrote {} report(s) to {path}", reports.len());
    }
}
