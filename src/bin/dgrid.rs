//! `dgrid` — command-line front end for the desktop-grid simulator.
//!
//! ```text
//! dgrid run     --algorithm rn-tree --scenario mixed/light [options]
//! dgrid compare --scenario clustered/heavy [options]
//! dgrid report  --events events.{jsonl|bin} [--timeseries series.json]
//! dgrid watch   --events events.{jsonl|bin} [--follow] [--window SECS]
//! dgrid events convert --events IN --out OUT [--to jsonl|binary]
//! dgrid check   [--seeds N] [--seed BASE] [--out PATH] [--matchmaker M[,M...]]
//! dgrid check   --replay repro.json
//! dgrid bench sweep [--replications N] [--json PATH]
//! dgrid bench overlays [--replications N] [--json PATH]
//! dgrid bench leases [--replications N] [--json PATH]
//! dgrid bench stream [--replications N] [--json PATH]
//! dgrid bench scale [--nodes N[,N...]] [--threads T[,T...]]
//!                   [--min-events-per-sec F] [--min-speedup X] [--json PATH]
//! dgrid bench scenarios [--scenario-file S] [--replications N] [--json PATH]
//!
//! options:
//!   --nodes N             grid size                      (default 200)
//!   --jobs M              job count                      (default 1000)
//!   --seed S              root seed                      (default 42)
//!   --threads N           worker threads for replicated/sweep work; for
//!                         `run` also parallelizes *inside* each
//!                         replication (sharded kernel); for `bench scale`
//!                         a comma ladder `1,2,4,8` to measure
//!                         (default: DGRID_THREADS env, else all cores)
//!   --replications R      average R independent seeds    (default 1)
//!   --mttf SECS           enable churn with this MTTF
//!   --rejoin SECS         repair time after a departure
//!   --graceful FRAC       fraction of graceful departures (default 0)
//!   --k K                 rn-tree extended-search width   (default 4)
//!   --loss P              drop each message with probability P
//!   --partition S:E:IDS   partition nodes IDS (comma-sep) from SECS S to E
//!                         (repeatable)
//!   --lease-ttl SECS      enable owner leases with this ttl (`inf` = leases
//!                         armed but never expiring)
//!   --lease-renew SECS    heartbeat-driven renewal cadence (default 30)
//!   --lease-grace SECS    post-ttl grace before expiry     (default 30)
//!   --placement P         owner placement under leases: hash | load-aware
//!                         (default hash for run/compare, load-aware for check)
//!   --scenario-file S     a declarative scenario: a preset label
//!                         (flash-crowd, diurnal-wave) or a path to a JSON
//!                         ScenarioSpec; run/compare/check build their
//!                         engines from the compiled spec (arrivals,
//!                         tenants, failure domains, churn, diurnal
//!                         availability, horizon) instead of the classic
//!                         --scenario/--nodes/--jobs/--mttf/--loss knobs
//!   --events PATH         stream the lifecycle trace to a file
//!   --format F            event stream format: jsonl | binary (default jsonl)
//!   --timeseries PATH     write sampled grid gauges as JSON
//!   --sample-secs SECS    gauge sampling cadence          (default 60)
//!   --json PATH           also write the full report(s) as JSON
//!
//! report options:
//!   --events PATH         the recorded stream to analyze (required); the
//!                         format is sniffed from the magic bytes, so both
//!                         JSONL and binary streams work unchanged
//!   --timeseries PATH     render sparklines from a gauge series file
//!   --timeline N          show per-job timelines for the first N jobs (default 10)
//!   --width W             sparkline/timeline width        (default 48)
//!
//! watch options (tail a live or recorded stream, either format):
//!   --events PATH         the stream to watch (required)
//!   --follow              poll the file for growth and refresh the view
//!                         (Ctrl-C to stop; default renders once and exits)
//!   --window SECS         virtual-time window for rates   (default 60)
//!   --refresh SECS        wall-clock poll cadence with --follow (default 0.5)
//!   --idle-exit SECS      with --follow, exit after this long without growth
//!   --width W             sparkline width                 (default 48)
//!
//! events convert options (lossless either direction):
//!   --events PATH         input stream (format sniffed)
//!   --out PATH            output stream
//!   --to F                target format: jsonl | binary (default: the
//!                         opposite of the input's format)
//!
//! check options:
//!   --seeds N             scenarios to sweep              (default 50)
//!   --seed BASE           first scenario seed             (default 42)
//!   --out PATH            repro artifact path  (default dgrid-check-repro.json)
//!   --replay PATH         re-run a previously written repro artifact
//!   --inject-bug NAME     deliberately break the engine (self-test);
//!                         names: epoch-dedup
//!   --matchmaker M[,M...] only sweep the listed matchmaker labels
//!                         (default: all six variants)
//!   --scenario-file S     sweep the declarative spec instead of generated
//!                         scenarios: each seed compiles the spec and runs
//!                         it under every selected matchmaker (oracles +
//!                         per-tenant fairness + cross-matchmaker
//!                         differential; no shrinking — specs are small)
//!
//! bench sweep options (defaults: 96 nodes, 400 jobs, 16 replications):
//!   --replications R      replications per timed cell    (default 16)
//!   --threads N           highest thread count to measure
//!   --json PATH           write the sweep results as JSON
//!
//! bench overlays options (same defaults): time the RN-Tree matchmaker on
//! every overlay substrate (chord, pastry, tapestry) over one replicated
//! cell and compare lookup hops, wait times, and wall time per substrate;
//! `--json` writes the comparison for the CI artifact.
//!
//! bench leases options (same defaults): the `T-lease` experiment — run
//! RN-Tree on the Tapestry substrate (the most placement-skewed overlay)
//! three ways: reassign-on-death, leases + hash placement, and leases +
//! load-aware placement; compares load fairness and wait times. `--lease-*`
//! override the default ttl 600 / renew 150 / grace 60.
//!
//! bench stream options (same defaults): the `T-stream` experiment — run the
//! same replicated cell under the Null, JSONL, and binary observers, report
//! events/sec, bytes, and the JSONL-vs-binary size ratio, assert the binary
//! stream is strictly cheaper than JSONL (bytes and wall time), and verify
//! the online sketch percentiles match the post-hoc report within one
//! log₂ bucket; `--json` writes the comparison for the CI artifact.
//!
//! bench scale options (defaults: sizes 1k/10k/100k, 1 replication): the
//! `T-scale` experiment — measure the simulation kernel at increasing grid
//! sizes, reporting setup time (workload + engine construction including
//! overlay bootstrap), steady-state events/sec, peak RSS, and the ratio
//! over the 96-node `bench sweep` baseline extrapolated linearly to each
//! size. `--nodes` takes a single size or a comma-separated ladder
//! (e.g. `--nodes 1000,10000,100000,1000000`); `--jobs` pins the job
//! count (default: nodes/10, at least 400); `--min-events-per-sec` makes
//! the run exit non-zero if any size falls below the floor (the CI
//! regression guard); `--json` writes the points for the CI artifact.
//! `--threads 1,2,4,8` additionally measures each size on the sharded
//! conservative-window kernel at every listed worker count, recording
//! events/sec and the parallel speedup over the one-thread sharded run;
//! `--min-speedup X` exits non-zero when the highest thread count falls
//! below `X`× (speedup floors only make sense on multi-core runners).
//!
//! bench scenarios options (defaults: 16 replications): the `T-scenario`
//! experiment — run every matchmaker family (central, rn-tree on each
//! substrate, can, pub-sub) over the production-shaped scenario presets
//! (or the one spec `--scenario-file` names) and compare wait times,
//! completion, and per-tenant fairness under flash crowds, correlated
//! outages, and diurnal load; `--json` writes the comparison (including
//! the per-tenant breakdown) for the CI artifact.
//! ```
//!
//! `run` executes one cell and prints the report (`--replications R` fans R
//! seeds out over the work-stealing pool and averages them); `compare` runs
//! every algorithm on the same workload and prints a comparison table;
//! `report` renders a per-phase wait-time decomposition from a recorded
//! event stream; `check` fuzzes randomized fault scenarios under every
//! matchmaker against the invariant oracles in `dgrid-check` (seeds checked
//! in parallel), shrinking any violation to a minimal replayable artifact;
//! `bench sweep` times one replicated cell at increasing thread counts and
//! reports the speedup over one thread, verifying byte-identical reports.
//!
//! All replicated work is deterministic: results are merged in input order,
//! so the same seed yields the same bytes at any `--threads` setting.

use std::io::{BufWriter, Write};

use dgrid::core::router::{PastryNetwork, TapestryNetwork};
use dgrid::core::{
    binary_to_jsonl, decode_stream, jsonl_to_binary, parse_jsonl_line, phase_samples, sniff_format,
    BinaryObserver, ChurnConfig, Engine, EngineConfig, FaultPlan, JobDag, JobSpan, JsonlObserver,
    Phase, PlacementPolicy, RnTreeConfig, RnTreeMatchmaker, SimReport, SpanAssembler, SpanOutcome,
    StreamAnalytics, StreamDecoder, StreamFormat,
};
use dgrid::harness::Algorithm;
use dgrid::sim::hist::LogHistogram;
use dgrid::sim::telemetry::TimeSeries;
use dgrid::sim::{SimDuration, SimTime};
use dgrid::workloads::{
    paper_scenario, scenario_preset, PaperScenario, ScenarioSpec, Workload, SCENARIO_PRESETS,
};

#[derive(Clone, Debug)]
struct Opts {
    command: String,
    algorithm: Algorithm,
    scenario: PaperScenario,
    nodes: usize,
    jobs: usize,
    seed: u64,
    mttf: Option<f64>,
    rejoin: Option<f64>,
    graceful: f64,
    k: usize,
    loss: f64,
    partitions: Vec<(f64, f64, Vec<u32>)>,
    events: Option<String>,
    format: StreamFormat,
    to_format: Option<StreamFormat>,
    follow: bool,
    window_secs: f64,
    refresh_secs: f64,
    idle_exit: Option<f64>,
    timeseries: Option<String>,
    sample_secs: f64,
    timeline: usize,
    width: usize,
    json: Option<String>,
    seeds: u64,
    out: Option<String>,
    replay: Option<String>,
    inject_bug: Option<String>,
    matchmakers: Option<String>,
    threads: Option<usize>,
    /// `bench scale` only: the worker-thread ladder from
    /// `--threads N[,N...]` (a bare `--threads N` is a one-point ladder).
    thread_axis: Option<Vec<usize>>,
    replications: usize,
    /// `bench scale` only: the grid-size ladder from `--nodes N[,N...]`.
    sizes: Option<Vec<usize>>,
    /// `bench scale` only: the regression-guard throughput floor.
    min_events_per_sec: Option<f64>,
    /// `bench scale` only: the regression-guard floor on the sharded
    /// kernel's parallel speedup at the highest measured thread count.
    min_speedup: Option<f64>,
    lease_ttl: Option<f64>,
    lease_renew: Option<f64>,
    lease_grace: Option<f64>,
    placement: Option<PlacementPolicy>,
    /// A declarative scenario from `--scenario-file` (a preset label or a
    /// JSON spec path); when set, run/compare/check build their engines
    /// from the compiled spec instead of the classic paper workload.
    scenario_spec: Option<ScenarioSpec>,
}

fn usage() -> ! {
    // The scenario and preset lines are generated from the workload
    // registries, so the help text cannot drift from what the parsers
    // accept.
    let scenarios = PaperScenario::ALL.map(PaperScenario::label).join(" ");
    let presets = SCENARIO_PRESETS.join(" ");
    eprintln!(
        "usage: dgrid <run|compare|report|watch|events convert|check|bench \
         sweep|bench overlays|bench leases|bench stream|bench scale|bench scenarios> \
         [--algorithm A] [--scenario S] [--scenario-file PRESET|SPEC.json] \
         [--nodes N] [--jobs M] [--seed S] [--threads N] [--replications R] [--mttf SECS] \
         [--rejoin SECS] [--graceful FRAC] \
         [--k K] [--loss P] [--partition START:END:IDS] \
         [--lease-ttl SECS] [--lease-renew SECS] [--lease-grace SECS] \
         [--placement hash|load-aware] [--events PATH] [--format jsonl|binary] \
         [--to jsonl|binary] [--follow] [--window SECS] [--refresh SECS] [--idle-exit SECS] \
         [--timeseries PATH] [--sample-secs SECS] [--timeline N] [--width W] [--json PATH] \
         [--seeds N] [--out PATH] [--replay PATH] [--inject-bug NAME] [--matchmaker M[,M...]] \
         [--min-events-per-sec F] [--min-speedup X]\n\
         algorithms: rn-tree rn-tree@pastry rn-tree@tapestry can can-push can-novirt central pub-sub\n\
         scenarios : {scenarios}\n\
         presets   : {presets} (for --scenario-file; or a JSON spec path)"
    );
    std::process::exit(2)
}

fn parse_algorithm(s: &str) -> Algorithm {
    match s {
        "rn-tree" | "rntree" | "rn-tree@chord" => Algorithm::RnTree,
        "rn-tree@pastry" | "rntree@pastry" => Algorithm::RnTreePastry,
        "rn-tree@tapestry" | "rntree@tapestry" => Algorithm::RnTreeTapestry,
        "can" => Algorithm::Can,
        "can-push" => Algorithm::CanPush,
        "can-novirt" => Algorithm::CanNoVirtualDim,
        "central" | "centralized" => Algorithm::Central,
        "pub-sub" | "pubsub" => Algorithm::PubSub,
        _ => usage(),
    }
}

/// Resolve `--scenario` against the [`PaperScenario`] registry, so the
/// accepted labels (and the error text) always match `PaperScenario::ALL`.
fn parse_scenario(s: &str) -> PaperScenario {
    PaperScenario::from_label(s).unwrap_or_else(|| {
        eprintln!(
            "unknown --scenario {s:?} (known: {})",
            PaperScenario::ALL.map(PaperScenario::label).join(", ")
        );
        std::process::exit(2);
    })
}

/// Resolve `--scenario-file`: a preset label from the scenario registry, or
/// a path to a JSON [`ScenarioSpec`] (sparse — absent fields take defaults).
fn parse_scenario_file(val: &str) -> ScenarioSpec {
    if let Some(spec) = scenario_preset(val) {
        return spec;
    }
    let json = std::fs::read_to_string(val).unwrap_or_else(|e| {
        eprintln!(
            "--scenario-file {val:?}: not a preset (known: {}) and not a readable file: {e}",
            SCENARIO_PRESETS.join(", ")
        );
        std::process::exit(2);
    });
    ScenarioSpec::from_json(&json).unwrap_or_else(|e| {
        eprintln!("--scenario-file {val}: {e}");
        std::process::exit(2);
    })
}

/// `START:END:ID[,ID...]` — a scheduled partition isolating the listed nodes.
fn parse_partition(s: &str) -> (f64, f64, Vec<u32>) {
    let parts: Vec<&str> = s.splitn(3, ':').collect();
    if parts.len() != 3 {
        usage();
    }
    let start: f64 = parts[0].parse().unwrap_or_else(|_| usage());
    let end: f64 = parts[1].parse().unwrap_or_else(|_| usage());
    let island: Vec<u32> = parts[2]
        .split(',')
        .map(|id| id.parse().unwrap_or_else(|_| usage()))
        .collect();
    if island.is_empty() {
        usage();
    }
    (start, end, island)
}

fn parse() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut opts = Opts {
        command: args[0].clone(),
        algorithm: Algorithm::RnTree,
        scenario: PaperScenario::MixedLight,
        nodes: 200,
        jobs: 1000,
        seed: 42,
        mttf: None,
        rejoin: None,
        graceful: 0.0,
        k: 4,
        loss: 0.0,
        partitions: Vec::new(),
        events: None,
        format: StreamFormat::Jsonl,
        to_format: None,
        follow: false,
        window_secs: 60.0,
        refresh_secs: 0.5,
        idle_exit: None,
        timeseries: None,
        sample_secs: 60.0,
        timeline: 10,
        width: 48,
        json: None,
        seeds: 50,
        out: None,
        replay: None,
        inject_bug: None,
        matchmakers: None,
        threads: None,
        thread_axis: None,
        replications: 1,
        sizes: None,
        min_events_per_sec: None,
        min_speedup: None,
        lease_ttl: None,
        lease_renew: None,
        lease_grace: None,
        placement: None,
        scenario_spec: None,
    };
    if opts.command != "run"
        && opts.command != "compare"
        && opts.command != "report"
        && opts.command != "watch"
        && opts.command != "events"
        && opts.command != "check"
        && opts.command != "bench"
    {
        usage();
    }
    let mut i = 1;
    if opts.command == "bench" {
        // Flags follow the subcommand. Defaults drop to the quick bench
        // scale so a sweep finishes in seconds.
        match args.get(1).map(String::as_str) {
            Some(sub @ ("sweep" | "overlays" | "leases" | "stream" | "scale" | "scenarios")) => {
                opts.command = format!("bench-{sub}")
            }
            _ => usage(),
        }
        opts.nodes = 96;
        opts.jobs = 400;
        opts.replications = 16;
        if opts.command == "bench-scale" {
            // Scale points run sequentially over the size ladder; `jobs == 0`
            // means "scale the job count with the grid" (nodes/10, min 400).
            opts.jobs = 0;
            opts.replications = 1;
        }
        i = 2;
    }
    if opts.command == "events" {
        match args.get(1).map(String::as_str) {
            Some("convert") => opts.command = "events-convert".to_string(),
            _ => usage(),
        }
        i = 2;
    }
    while i < args.len() {
        let flag = args[i].as_str();
        // Boolean flags take no value.
        if flag == "--follow" {
            opts.follow = true;
            i += 1;
            continue;
        }
        let val = args.get(i + 1).unwrap_or_else(|| usage()).clone();
        match flag {
            "--algorithm" => opts.algorithm = parse_algorithm(&val),
            "--scenario" => opts.scenario = parse_scenario(&val),
            "--scenario-file" => opts.scenario_spec = Some(parse_scenario_file(&val)),
            "--nodes" if opts.command == "bench-scale" => {
                opts.sizes = Some(
                    val.split(',')
                        .map(|s| s.parse().unwrap_or_else(|_| usage()))
                        .collect(),
                )
            }
            "--nodes" => opts.nodes = val.parse().unwrap_or_else(|_| usage()),
            "--jobs" => opts.jobs = val.parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = val.parse().unwrap_or_else(|_| usage()),
            "--mttf" => opts.mttf = Some(val.parse().unwrap_or_else(|_| usage())),
            "--rejoin" => opts.rejoin = Some(val.parse().unwrap_or_else(|_| usage())),
            "--graceful" => opts.graceful = val.parse().unwrap_or_else(|_| usage()),
            "--k" => opts.k = val.parse().unwrap_or_else(|_| usage()),
            "--loss" => opts.loss = val.parse().unwrap_or_else(|_| usage()),
            "--partition" => opts.partitions.push(parse_partition(&val)),
            "--events" => opts.events = Some(val),
            "--format" => opts.format = val.parse().unwrap_or_else(|_| usage()),
            "--to" => opts.to_format = Some(val.parse().unwrap_or_else(|_| usage())),
            "--window" => opts.window_secs = val.parse().unwrap_or_else(|_| usage()),
            "--refresh" => opts.refresh_secs = val.parse().unwrap_or_else(|_| usage()),
            "--idle-exit" => opts.idle_exit = Some(val.parse().unwrap_or_else(|_| usage())),
            "--timeseries" => opts.timeseries = Some(val),
            "--sample-secs" => opts.sample_secs = val.parse().unwrap_or_else(|_| usage()),
            "--timeline" => opts.timeline = val.parse().unwrap_or_else(|_| usage()),
            "--width" => opts.width = val.parse().unwrap_or_else(|_| usage()),
            "--json" => opts.json = Some(val),
            "--seeds" => opts.seeds = val.parse().unwrap_or_else(|_| usage()),
            "--out" => opts.out = Some(val),
            "--replay" => opts.replay = Some(val),
            "--inject-bug" => opts.inject_bug = Some(val),
            "--matchmaker" => opts.matchmakers = Some(val),
            "--lease-ttl" => opts.lease_ttl = Some(val.parse().unwrap_or_else(|_| usage())),
            "--lease-renew" => opts.lease_renew = Some(val.parse().unwrap_or_else(|_| usage())),
            "--lease-grace" => opts.lease_grace = Some(val.parse().unwrap_or_else(|_| usage())),
            "--placement" => opts.placement = Some(val.parse().unwrap_or_else(|_| usage())),
            "--min-events-per-sec" => {
                opts.min_events_per_sec = Some(val.parse().unwrap_or_else(|_| usage()))
            }
            "--min-speedup" => opts.min_speedup = Some(val.parse().unwrap_or_else(|_| usage())),
            "--threads" => {
                // A comma list is the `bench scale` thread ladder; a bare
                // count drives every other command. Either way `threads`
                // carries the highest count for the pool install.
                let axis: Vec<usize> = val
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if axis.is_empty() || axis.contains(&0) {
                    usage();
                }
                opts.threads = Some(*axis.iter().max().expect("non-empty axis"));
                opts.thread_axis = Some(axis);
            }
            "--replications" => {
                let n: usize = val.parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                opts.replications = n;
            }
            _ => usage(),
        }
        i += 2;
    }
    opts
}

/// The fault plan described by `--loss` / `--partition`, or `None` when the
/// flags were not given (keeping the engine on its bit-exact fault-free path).
fn fault_plan(opts: &Opts) -> Option<FaultPlan> {
    if opts.loss == 0.0 && opts.partitions.is_empty() {
        return None;
    }
    let mut plan = if opts.loss > 0.0 {
        FaultPlan::with_loss(opts.loss)
    } else {
        FaultPlan::none()
    };
    for (start, end, island) in &opts.partitions {
        plan = plan.with_partition(*start, *end, island.clone());
    }
    Some(plan)
}

/// Apply the `--lease-*` / `--placement` flags onto an engine config.
fn apply_lease_flags(opts: &Opts, cfg: &mut EngineConfig) {
    if let Some(ttl) = opts.lease_ttl {
        cfg.lease_ttl_secs = Some(ttl);
        cfg.lease_renew_secs = opts.lease_renew.unwrap_or(cfg.lease_renew_secs);
        cfg.lease_grace_secs = opts.lease_grace.unwrap_or(cfg.lease_grace_secs);
        // Leases require an explicit placement policy; default the CLI to
        // the paper-faithful hash placement unless --placement says otherwise.
        cfg.placement = Some(opts.placement.unwrap_or(PlacementPolicy::Hash));
    }
}

/// The matchmaker `(algorithm, --k)` selects: RN-Tree variants honor the
/// extended-search width, everything else builds its defaults.
fn matchmaker_for(opts: &Opts, algorithm: Algorithm) -> Box<dyn dgrid::core::Matchmaker> {
    let rn_cfg = RnTreeConfig {
        k: opts.k,
        ..RnTreeConfig::default()
    };
    match algorithm {
        Algorithm::RnTree => Box::new(RnTreeMatchmaker::new(rn_cfg)),
        Algorithm::RnTreePastry => {
            Box::new(RnTreeMatchmaker::<PastryNetwork>::on_substrate(rn_cfg))
        }
        Algorithm::RnTreeTapestry => {
            Box::new(RnTreeMatchmaker::<TapestryNetwork>::on_substrate(rn_cfg))
        }
        _ => algorithm.matchmaker(),
    }
}

/// Assemble one engine for `(opts, algorithm, workload)` with the options'
/// churn, `--k`, and fault plan applied, but `seed` taken explicitly so
/// replicated runs can vary it.
fn build_engine(opts: &Opts, algorithm: Algorithm, workload: &Workload, seed: u64) -> Engine {
    let mut cfg = EngineConfig {
        seed,
        max_sim_secs: 5_000_000.0,
        ..EngineConfig::default()
    };
    apply_lease_flags(opts, &mut cfg);
    let churn = ChurnConfig {
        mttf_secs: opts.mttf,
        rejoin_after_secs: opts.rejoin,
        graceful_fraction: opts.graceful,
    };
    let mut engine = Engine::new(
        cfg,
        churn,
        matchmaker_for(opts, algorithm),
        workload.nodes.clone(),
        workload.submissions.clone(),
    );
    if let Some(plan) = fault_plan(opts) {
        engine.set_fault_plan(plan);
    }
    engine
}

/// Assemble one engine from a declarative [`ScenarioSpec`] compiled at
/// `seed`: the spec supplies the workload, churn, fault plan, availability
/// schedule, and horizon; the CLI's `--k` and `--lease-*` flags still
/// apply. Mirrors `dgrid_check::run_spec`, so what the checker judges is
/// exactly what `run --scenario-file` executes.
fn build_spec_engine(opts: &Opts, algorithm: Algorithm, spec: &ScenarioSpec, seed: u64) -> Engine {
    let compiled = spec.compile(seed);
    let mut cfg = EngineConfig {
        seed,
        max_sim_secs: compiled.horizon_secs,
        ..EngineConfig::default()
    };
    apply_lease_flags(opts, &mut cfg);
    let mut engine = Engine::with_dag_and_schedule(
        cfg,
        compiled.churn,
        matchmaker_for(opts, algorithm),
        compiled.workload.nodes,
        compiled.workload.submissions,
        JobDag::none(),
        compiled.schedule,
    );
    if !compiled.fault_plan.is_none() {
        engine.set_fault_plan(compiled.fault_plan);
    }
    engine
}

/// One engine for `(opts, algorithm, seed)`: compiled from the declarative
/// spec when `--scenario-file` was given, otherwise generated from the
/// classic paper scenario knobs.
fn engine_for(opts: &Opts, algorithm: Algorithm, seed: u64) -> Engine {
    match &opts.scenario_spec {
        Some(spec) => build_spec_engine(opts, algorithm, spec, seed),
        None => {
            let workload = paper_scenario(opts.scenario, opts.nodes, opts.jobs, seed);
            build_engine(opts, algorithm, &workload, seed)
        }
    }
}

/// The stream observer `--format` selects, writing into `sink`.
fn stream_observer<W: Write + 'static>(
    format: StreamFormat,
    sink: W,
) -> Box<dyn dgrid::core::Observer> {
    match format {
        StreamFormat::Jsonl => Box::new(JsonlObserver::new(sink)),
        StreamFormat::Binary => Box::new(BinaryObserver::new(sink)),
    }
}

fn run_one(opts: &Opts, algorithm: Algorithm, tracing: bool) -> SimReport {
    let mut engine = engine_for(opts, algorithm, opts.seed);
    // `run --threads N` parallelizes *inside* the replication: the sharded
    // conservative-window kernel with the pinned shard count, so the same
    // seed yields the same bytes at any N.
    if opts.command == "run" && opts.threads.is_some() {
        engine.set_sharded_execution(Engine::DEFAULT_SHARDS);
    }
    if tracing {
        if let Some(path) = &opts.events {
            let f = std::fs::File::create(path).expect("create events output");
            engine.set_observer(stream_observer(opts.format, BufWriter::new(f)));
        }
        if opts.timeseries.is_some() {
            engine.set_timeseries_sampling(SimDuration::from_secs_f64(opts.sample_secs));
        }
    }
    engine.run()
}

/// A `Write` handle whose buffer survives the observer that consumes it, so
/// a replication running on a pool worker can hand its event bytes back
/// after the engine (and the `JsonlObserver` boxed inside it) is dropped.
/// Never shared across threads — each replication builds its own.
#[derive(Clone, Default)]
struct SharedSink(std::rc::Rc<std::cell::RefCell<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Run one replication with its own seed (workload regenerated from that
/// seed, matching `harness::run_cell`), optionally capturing its event
/// stream (in the `--format` of choice) in memory.
fn run_replication(
    opts: &Opts,
    algorithm: Algorithm,
    seed: u64,
    capture_events: bool,
) -> (SimReport, Vec<u8>) {
    let mut engine = engine_for(opts, algorithm, seed);
    // With `--threads`, replication-level fan-out and shard-level execution
    // share the pool (each nested shard batch gets a slice of the budget).
    if opts.command == "run" && opts.threads.is_some() {
        engine.set_sharded_execution(Engine::DEFAULT_SHARDS);
    }
    let sink = SharedSink::default();
    if capture_events {
        engine.set_observer(stream_observer(opts.format, sink.clone()));
    }
    let report = engine.run();
    let events = sink.0.take();
    (report, events)
}

/// `run --replications R` (R > 1): fan R seeds (`seed ^ 1 ..= seed ^ R`,
/// the `run_cell` scheme) out over the pool, print a per-replication table
/// plus the averages, and write the concatenated event streams — in
/// replication order, so the file is identical at any thread count.
fn run_replicated(opts: &Opts) -> Vec<SimReport> {
    use rayon::prelude::*;

    let capture = opts.events.is_some();
    let results: Vec<(SimReport, Vec<u8>)> = (0..opts.replications as u64)
        .into_par_iter()
        .map(|r| run_replication(opts, opts.algorithm, opts.seed ^ (r + 1), capture))
        .collect();

    println!(
        "{:>4} {:>12} {:>10} {:>10} {:>10} {:>11}",
        "rep", "seed", "mean wait", "std wait", "hops/job", "completion"
    );
    for (r, (report, _)) in results.iter().enumerate() {
        println!(
            "{:>4} {:>12} {:>9.1}s {:>9.1}s {:>10.1} {:>10.1}%",
            r,
            opts.seed ^ (r as u64 + 1),
            report.mean_wait(),
            report.std_wait(),
            report.match_hops.mean() + report.owner_hops.mean(),
            100.0 * report.completion_rate(),
        );
    }
    let n = results.len() as f64;
    println!(
        "{:>4} {:>12} {:>9.1}s {:>9.1}s {:>10.1} {:>10.1}%",
        "mean",
        "-",
        results.iter().map(|(r, _)| r.mean_wait()).sum::<f64>() / n,
        results.iter().map(|(r, _)| r.std_wait()).sum::<f64>() / n,
        results
            .iter()
            .map(|(r, _)| r.match_hops.mean() + r.owner_hops.mean())
            .sum::<f64>()
            / n,
        100.0
            * results
                .iter()
                .map(|(r, _)| r.completion_rate())
                .sum::<f64>()
            / n,
    );

    if let Some(path) = &opts.events {
        let f = std::fs::File::create(path).expect("create events output");
        let mut w = BufWriter::new(f);
        for (_, events) in &results {
            w.write_all(events).expect("write event stream");
        }
        w.flush().expect("flush event stream");
        eprintln!(
            "wrote {} concatenated event stream(s) to {path}",
            results.len()
        );
    }
    results.into_iter().map(|(r, _)| r).collect()
}

fn print_report(r: &SimReport) {
    println!("algorithm        : {}", r.algorithm);
    println!(
        "jobs             : {} completed, {} failed of {}",
        r.jobs_completed, r.jobs_failed, r.jobs_total
    );
    println!("mean wait        : {:>10.1} s", r.mean_wait());
    println!("stdev wait       : {:>10.1} s", r.std_wait());
    if let Some(w) = &r.wait_stats {
        println!(
            "wait percentiles : {:>10.1} s p50, {:.1} s p95, {:.1} s p99",
            w.p50, w.p95, w.p99
        );
    }
    println!("mean turnaround  : {:>10.1} s", r.turnaround.mean());
    if let Some(t) = &r.turnaround_stats {
        println!(
            "turn percentiles : {:>10.1} s p50, {:.1} s p95, {:.1} s p99",
            t.p50, t.p95, t.p99
        );
    }
    println!("makespan         : {:>10.1} s", r.makespan_secs);
    println!(
        "matchmaking cost : {:>10.1} hops/job",
        r.match_hops.mean() + r.owner_hops.mean()
    );
    println!("load fairness    : {:>10.3}", r.load_fairness());
    println!("client fairness  : {:>10.3}", r.client_fairness());
    if r.messages_lost > 0 || r.lookup_retries > 0 {
        println!(
            "faults           : {} messages lost, {} retries, {} spurious detections",
            r.messages_lost, r.lookup_retries, r.spurious_detections
        );
    }
    if r.node_failures + r.graceful_leaves > 0 {
        println!(
            "churn            : {} failures, {} graceful leaves",
            r.node_failures, r.graceful_leaves
        );
        println!(
            "recoveries       : {} run, {} owner, {} client resubmits",
            r.run_recoveries, r.owner_recoveries, r.client_resubmits
        );
    }
    if r.lease_renewals + r.lease_expiries + r.lease_transfers > 0 {
        println!(
            "leases           : {} renewals, {} expiries, {} transfers",
            r.lease_renewals, r.lease_expiries, r.lease_transfers
        );
    }
}

/// Per-tenant wait breakdown for a scenario run. Tenant `i` submits as
/// engine client `i`, so the report's per-client accumulators are the
/// per-tenant accumulators under their spec names.
fn print_tenant_breakdown(r: &SimReport, spec: &ScenarioSpec) {
    println!("tenant fairness  : {:>10.3}", r.tenant_fairness());
    for (i, t) in spec.tenants.iter().enumerate() {
        let (jobs, mean) = r
            .client_waits
            .get(&(i as u32))
            .map_or((0, 0.0), |s| (s.count(), s.mean()));
        println!(
            "  {:<15}: {:>6} job(s) waited, mean wait {:.1} s (weight {})",
            t.name, jobs, mean, t.weight
        );
    }
}

/// Load spans back out of a recorded event stream, either format (sniffed
/// from the magic bytes), so every existing `report` recipe keeps working
/// when the stream was recorded with `--format binary`.
fn spans_from_events(path: &str) -> Vec<JobSpan> {
    let bytes = std::fs::read(path).expect("read events file");
    let mut assembler = SpanAssembler::new();
    match sniff_format(&bytes) {
        StreamFormat::Binary => {
            let records = decode_stream(&bytes).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            });
            for rec in records {
                assembler.observe(SimTime::ZERO + SimDuration::from_nanos(rec.t_ns), rec.event);
            }
        }
        StreamFormat::Jsonl => {
            let text = String::from_utf8(bytes).unwrap_or_else(|_| {
                eprintln!("{path}: not valid UTF-8 (and not a binary event stream)");
                std::process::exit(1);
            });
            for (lineno, line) in text.lines().enumerate() {
                match parse_jsonl_line(line) {
                    Ok(Some(rec)) => assembler
                        .observe(SimTime::ZERO + SimDuration::from_nanos(rec.t_ns), rec.event),
                    Ok(None) => {}
                    Err(e) => {
                        eprintln!("{path}:{}: {e}", lineno + 1);
                        std::process::exit(1);
                    }
                }
            }
        }
    }
    assembler.finish()
}

/// One letter per phase for the compact per-job timeline.
fn phase_glyph(p: Phase) -> char {
    match p {
        Phase::Routing => 'r',
        Phase::Matchmaking => 'm',
        Phase::Dispatch => 'd',
        Phase::Execution => '#',
        Phase::Recovery => '!',
        Phase::ResultReturn => 't',
    }
}

/// Render one span as a proportional fixed-width bar of phase glyphs.
fn timeline_bar(span: &JobSpan, width: usize) -> String {
    let total = span.total().as_nanos();
    if total == 0 || width == 0 {
        return String::new();
    }
    let mut bar = String::with_capacity(width);
    for phase in Phase::ALL {
        let ns = span.phase(phase).as_nanos();
        let cells = ((ns as u128 * width as u128 + total as u128 / 2) / total as u128) as usize;
        let cells = if ns > 0 { cells.max(1) } else { 0 };
        for _ in 0..cells {
            bar.push(phase_glyph(phase));
        }
    }
    bar.truncate(width);
    bar
}

fn cmd_report(opts: &Opts) {
    let Some(events) = &opts.events else {
        eprintln!("dgrid report requires --events PATH");
        usage();
    };
    let spans = spans_from_events(events);
    let completed = spans
        .iter()
        .filter(|s| s.outcome == SpanOutcome::Completed)
        .count();
    let failed = spans
        .iter()
        .filter(|s| s.outcome == SpanOutcome::Failed)
        .count();
    let open = spans.len() - completed - failed;
    println!(
        "{} jobs traced: {completed} completed, {failed} failed, {open} open",
        spans.len()
    );
    let recoveries: u32 = spans.iter().map(|s| s.recoveries).sum();
    let resubmits: u32 = spans.iter().map(|s| s.resubmits).sum();
    if recoveries + resubmits > 0 {
        println!("{recoveries} recoveries, {resubmits} client resubmissions");
    }
    println!();

    // Per-phase percentile table with a log-histogram sparkline of the
    // nonzero durations.
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>10} {:>10}  distribution",
        "phase", "jobs", "mean", "p50", "p95", "p99"
    );
    for (phase, mut set) in phase_samples(&spans) {
        let nonzero: Vec<f64> = set.samples().iter().copied().filter(|&x| x > 0.0).collect();
        let mut hist = LogHistogram::new(2.0);
        for x in &nonzero {
            hist.record(*x);
        }
        let s = set.summary();
        println!(
            "{:<14} {:>8} {:>9.1}s {:>9.1}s {:>9.1}s {:>9.1}s  {}",
            phase.label(),
            nonzero.len(),
            s.mean,
            s.p50,
            s.p95,
            s.p99,
            hist.sparkline(),
        );
    }

    // Compact per-job timelines, submission order.
    if opts.timeline > 0 {
        let mut ordered: Vec<&JobSpan> = spans.iter().collect();
        ordered.sort_by_key(|s| (s.submitted_at, s.job));
        println!();
        println!(
            "first {} job timelines (r=routing m=matchmaking d=dispatch #=execution !=recovery t=result)",
            ordered.len().min(opts.timeline)
        );
        for span in ordered.iter().take(opts.timeline) {
            let total = span.total();
            println!(
                "{:>8} {:>9.1}s |{}|",
                span.job.to_string(),
                total.as_secs_f64(),
                timeline_bar(span, opts.width)
            );
        }
    }

    // Gauge sparklines from a recorded time series.
    if let Some(path) = &opts.timeseries {
        let f = std::fs::File::open(path).expect("open timeseries file");
        let ts: TimeSeries = serde_json::from_reader(f).expect("parse timeseries file");
        println!();
        println!(
            "grid gauges over virtual time ({} samples, every {:.0}s)",
            ts.len(),
            ts.cadence_secs()
        );
        for name in ts.names() {
            let xs = ts.get(name).unwrap();
            let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            println!(
                "{:<12} {} [{:.0}..{:.0}]",
                name,
                ts.sparkline(name, opts.width).unwrap_or_default(),
                min,
                max
            );
        }
    }
}

/// `dgrid events convert`: lossless conversion between the JSONL and binary
/// stream formats. The input format is sniffed; the target defaults to the
/// opposite format. Same-format conversion re-encodes through the record
/// layer, which validates the stream and normalizes a concatenated
/// multi-replication binary file down to a single header.
fn cmd_events_convert(opts: &Opts) {
    let Some(input) = &opts.events else {
        eprintln!("dgrid events convert requires --events IN");
        usage();
    };
    let Some(output) = &opts.out else {
        eprintln!("dgrid events convert requires --out OUT");
        usage();
    };
    let bytes = std::fs::read(input).expect("read input stream");
    let from = sniff_format(&bytes);
    let to = opts.to_format.unwrap_or(match from {
        StreamFormat::Jsonl => StreamFormat::Binary,
        StreamFormat::Binary => StreamFormat::Jsonl,
    });
    let fail = |e: dgrid::core::StreamError| -> ! {
        eprintln!("{input}: {e}");
        std::process::exit(1);
    };
    let as_text = |bytes: Vec<u8>| -> String {
        String::from_utf8(bytes).unwrap_or_else(|_| {
            eprintln!("{input}: not valid UTF-8 (and not a binary event stream)");
            std::process::exit(1);
        })
    };
    let out_bytes: Vec<u8> = match (from, to) {
        (StreamFormat::Jsonl, StreamFormat::Binary) => {
            jsonl_to_binary(&as_text(bytes)).unwrap_or_else(|e| fail(e))
        }
        (StreamFormat::Binary, StreamFormat::Jsonl) => binary_to_jsonl(&bytes)
            .unwrap_or_else(|e| fail(e))
            .into_bytes(),
        (StreamFormat::Binary, StreamFormat::Binary) => {
            let records = decode_stream(&bytes).unwrap_or_else(|e| fail(e));
            dgrid::core::encode_events(&records)
        }
        (StreamFormat::Jsonl, StreamFormat::Jsonl) => {
            let bin = jsonl_to_binary(&as_text(bytes)).unwrap_or_else(|e| fail(e));
            binary_to_jsonl(&bin)
                .unwrap_or_else(|e| fail(e))
                .into_bytes()
        }
    };
    let in_len = std::fs::metadata(input).map(|m| m.len()).unwrap_or(0);
    std::fs::write(output, &out_bytes).expect("write output stream");
    eprintln!(
        "converted {input} ({}) -> {output} ({}): {} -> {} bytes ({:.2}x)",
        from.label(),
        to.label(),
        in_len,
        out_bytes.len(),
        in_len as f64 / (out_bytes.len().max(1)) as f64,
    );
}

/// Incremental feeder for `dgrid watch`: sniffs the stream format from the
/// first bytes, then routes chunks through the matching incremental decoder
/// into a [`StreamAnalytics`]. Partial frames / partial lines at a chunk
/// boundary are held until more bytes arrive, which is what makes tailing a
/// file mid-write safe.
struct StreamTail {
    analytics: StreamAnalytics,
    fmt: Option<StreamFormat>,
    head: Vec<u8>,
    dec: StreamDecoder,
    line_buf: Vec<u8>,
    events: u64,
}

impl StreamTail {
    fn new(window: SimDuration, history: usize) -> Self {
        StreamTail {
            analytics: StreamAnalytics::new(window, history),
            fmt: None,
            head: Vec::new(),
            dec: StreamDecoder::new(),
            line_buf: Vec::new(),
            events: 0,
        }
    }

    fn push(&mut self, bytes: &[u8], eof: bool) -> Result<(), String> {
        if self.fmt.is_none() {
            // Hold bytes until the format is decidable (8 bytes settles it);
            // the format is sniffed exactly once per stream.
            self.head.extend_from_slice(bytes);
            if self.head.len() < 8 && !eof {
                return Ok(());
            }
            self.fmt = Some(sniff_format(&self.head));
            let held = std::mem::take(&mut self.head);
            return self.consume(&held, eof);
        }
        // Steady state (every later `--follow` poll): consume the slice in
        // place — the decoders buffer partial frames/lines themselves, so
        // no intermediate copy of the chunk is needed.
        self.consume(bytes, eof)
    }

    fn consume(&mut self, bytes: &[u8], eof: bool) -> Result<(), String> {
        match self.fmt {
            Some(StreamFormat::Binary) => {
                self.dec.push(bytes);
                loop {
                    match self.dec.next_event() {
                        Ok(Some(rec)) => {
                            self.analytics.feed_record(&rec);
                            self.events += 1;
                        }
                        Ok(None) => break,
                        Err(e) => return Err(e.to_string()),
                    }
                }
                if eof {
                    self.dec.finish().map_err(|e| e.to_string())?;
                }
            }
            Some(StreamFormat::Jsonl) => {
                self.line_buf.extend_from_slice(bytes);
                let mut start = 0;
                while let Some(nl) = self.line_buf[start..].iter().position(|&b| b == b'\n') {
                    let line = &self.line_buf[start..start + nl];
                    start += nl + 1;
                    let line = std::str::from_utf8(line).map_err(|_| "non-UTF-8 event line")?;
                    match parse_jsonl_line(line) {
                        Ok(Some(rec)) => {
                            self.analytics.feed_record(&rec);
                            self.events += 1;
                        }
                        Ok(None) => {}
                        Err(e) => return Err(e.to_string()),
                    }
                }
                self.line_buf.drain(..start);
                if eof && !self.line_buf.is_empty() {
                    return Err("stream truncated mid-line".to_string());
                }
            }
            None => unreachable!("format was just decided"),
        }
        Ok(())
    }
}

/// Render a slice of per-window values as a fixed-width sparkline (last
/// `width` windows, scaled to the slice maximum).
fn sparkline(xs: &[f64], width: usize) -> String {
    const GLYPHS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let tail = &xs[xs.len().saturating_sub(width)..];
    let max = tail.iter().copied().fold(0.0f64, f64::max);
    tail.iter()
        .map(|&x| {
            if max <= 0.0 {
                GLYPHS[0]
            } else {
                let idx = ((x / max) * 7.0).round() as usize;
                GLYPHS[idx.min(7)]
            }
        })
        .collect()
}

fn fmt_ns_secs(ns: u64) -> String {
    format!("{:.1}s", ns as f64 / 1e9)
}

/// Render one refresh of the watch dashboard.
fn render_watch(tail: &StreamTail, path: &str, opts: &Opts, clear: bool) {
    use dgrid::core::EventKind;

    let snap = tail.analytics.snapshot();
    let mut out = String::new();
    if clear {
        out.push_str("\x1b[2J\x1b[H");
    }
    let fmt = tail.fmt.map(StreamFormat::label).unwrap_or("?");
    out.push_str(&format!(
        "watch {path} ({fmt})  {} events  t = {:.1}s virtual\n",
        snap.events_total,
        snap.last_t_ns as f64 / 1e9
    ));
    out.push_str(&format!(
        "jobs: {} inflight, {} executing, {} completed, {} failed\n",
        snap.inflight,
        snap.executing,
        snap.per_kind[EventKind::Completed.index()],
        snap.per_kind[EventKind::Failed.index()]
    ));
    for (label, stats) in [("wait", &snap.wait), ("turnaround", &snap.turnaround)] {
        match stats {
            Some(s) => out.push_str(&format!(
                "{label:<10} p50 {:>8} p95 {:>8} p99 {:>8} max {:>8} (n={})\n",
                fmt_ns_secs(s.p50_ns),
                fmt_ns_secs(s.p95_ns),
                fmt_ns_secs(s.p99_ns),
                fmt_ns_secs(s.max_ns),
                s.count
            )),
            None => out.push_str(&format!("{label:<10} (no samples yet)\n")),
        }
    }
    // Per-window rates over the retained history plus the open window.
    let window_secs = snap.window_ns as f64 / 1e9;
    let mut all_rows: Vec<&[u64]> = snap.recent.iter().map(|r| r.counts.as_slice()).collect();
    all_rows.push(&snap.current);
    let series = |pick: &dyn Fn(&[u64]) -> u64| -> Vec<f64> {
        all_rows
            .iter()
            .map(|c| pick(c) as f64 / window_secs)
            .collect()
    };
    let rows: [(&str, Vec<f64>); 3] = [
        ("events/s", series(&|c| c.iter().sum())),
        (
            "completions/s",
            series(&|c| c[EventKind::Completed.index()]),
        ),
        (
            "lease xfers/s",
            series(&|c| c[EventKind::LeaseTransferred.index()]),
        ),
    ];
    out.push_str(&format!("per-{window_secs:.0}s-window rates:\n"));
    for (label, xs) in rows {
        let max = xs.iter().copied().fold(0.0f64, f64::max);
        out.push_str(&format!(
            "  {label:<14} {} [0..{max:.2}]\n",
            sparkline(&xs, opts.width)
        ));
    }
    out.push_str("kinds:");
    for kind in EventKind::ALL {
        let n = snap.per_kind[kind.index()];
        if n > 0 {
            out.push_str(&format!(" {}={n}", kind.label()));
        }
    }
    out.push('\n');
    print!("{out}");
    use std::io::Write as _;
    std::io::stdout().flush().ok();
}

/// `dgrid watch`: tail a live or recorded event stream (either format) and
/// render a refreshing terminal dashboard of window rates, percentile
/// sketches, and per-kind counters — observability that works *while* the
/// run is still writing, not just post-hoc.
fn cmd_watch(opts: &Opts) {
    let Some(path) = &opts.events else {
        eprintln!("dgrid watch requires --events PATH");
        usage();
    };
    let window = SimDuration::from_secs_f64(opts.window_secs);
    let mut tail = StreamTail::new(window, 512);

    if !opts.follow {
        let bytes = std::fs::read(path).expect("read events file");
        if let Err(e) = tail.push(&bytes, true) {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
        render_watch(&tail, path, opts, false);
        return;
    }

    use std::io::{IsTerminal, Read, Seek, SeekFrom};
    let clear = std::io::stdout().is_terminal();
    let mut pos: u64 = 0;
    let mut idle_secs = 0.0f64;
    loop {
        let mut grew = false;
        if let Ok(mut f) = std::fs::File::open(path) {
            let len = f.metadata().map(|m| m.len()).unwrap_or(0);
            if len > pos {
                f.seek(SeekFrom::Start(pos)).expect("seek events file");
                let mut buf = Vec::with_capacity((len - pos) as usize);
                f.take(len - pos)
                    .read_to_end(&mut buf)
                    .expect("read events file");
                pos += buf.len() as u64;
                if let Err(e) = tail.push(&buf, false) {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                }
                grew = true;
            }
        }
        render_watch(&tail, path, opts, clear);
        if grew {
            idle_secs = 0.0;
        } else {
            idle_secs += opts.refresh_secs;
            if opts.idle_exit.is_some_and(|limit| idle_secs >= limit) {
                return;
            }
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(
            opts.refresh_secs.max(0.01),
        ));
    }
}

/// `dgrid check`: sweep randomized fault scenarios through the invariant
/// oracles under every matchmaker, shrinking the first violation found to a
/// minimal replayable artifact; or `--replay` a previously written artifact.
fn cmd_check(opts: &Opts) {
    use dgrid::check::{
        check_run, check_scenario, check_scenario_with, check_spec_with, fault_event_count, shrink,
        Inject, LeaseSpec, MatchmakerChoice, ReproArtifact, ScenarioVerdict, Violation,
    };
    use std::path::Path;

    // `--lease-ttl` turns every generated scenario into a leased run: the
    // no-orphan oracle joins the battery and each scenario is additionally
    // compared against its own reassign-on-death baseline. Unspecified
    // companion knobs default to the standard check lease (renew 15s,
    // grace 10s, load-aware placement).
    let lease = opts.lease_ttl.map(|ttl| LeaseSpec {
        ttl_secs: ttl,
        renew_secs: opts.lease_renew.unwrap_or(15.0),
        grace_secs: opts.lease_grace.unwrap_or(10.0),
        placement: opts.placement.unwrap_or(PlacementPolicy::LoadAware),
    });

    let inject = match opts.inject_bug.as_deref() {
        None => Inject::default(),
        Some("epoch-dedup") => Inject {
            disable_epoch_dedup: true,
        },
        Some(other) => {
            eprintln!("unknown --inject-bug {other:?} (known: epoch-dedup)");
            std::process::exit(2);
        }
    };

    // `--matchmaker a,b` restricts the sweep (the CI overlay-matrix job runs
    // one substrate per shard); default is every variant.
    let selected: Vec<MatchmakerChoice> = match opts.matchmakers.as_deref() {
        None => MatchmakerChoice::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|label| {
                MatchmakerChoice::from_label(label).unwrap_or_else(|| {
                    eprintln!(
                        "unknown --matchmaker {label:?} (known: {})",
                        MatchmakerChoice::ALL.map(|m| m.label()).join(", ")
                    );
                    std::process::exit(2);
                })
            })
            .collect(),
    };
    if selected.is_empty() {
        eprintln!("--matchmaker selected no matchmakers");
        std::process::exit(2);
    }

    fn print_violations(violations: &[Violation]) {
        for v in violations {
            println!("  {v}");
        }
    }

    if let Some(path) = &opts.replay {
        let artifact = ReproArtifact::read(Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot read repro artifact {path}: {e}");
            std::process::exit(2);
        });
        let violations = match artifact.matchmaker {
            Some(mm) => check_run(&artifact.scenario, mm, artifact.inject).violations,
            None => check_scenario(&artifact.scenario, artifact.inject).all_violations(),
        };
        if violations.is_empty() {
            println!("replay of {path}: clean (violation no longer reproduces)");
        } else {
            println!("replay of {path}: {} violation(s)", violations.len());
            print_violations(&violations);
            std::process::exit(1);
        }
        return;
    }

    let base = opts.seed;
    let mm_labels = selected
        .iter()
        .map(|m| m.label())
        .collect::<Vec<_>>()
        .join(", ");

    // `--scenario-file`: differentially check the declarative spec itself,
    // compiled at every sweep seed and run under every selected matchmaker
    // — the scenario-file analog of the generated-scenario sweep. Specs
    // are hand-written and already small, so violations are reported
    // without shrinking.
    if let Some(spec) = &opts.scenario_spec {
        use rayon::prelude::*;
        if inject != Inject::default() || lease.is_some() {
            eprintln!("--scenario-file checks do not support --inject-bug or --lease-ttl");
            std::process::exit(2);
        }
        println!(
            "checking scenario '{}' at {} seed(s) from {base}, {} matchmaker(s) [{mm_labels}], \
             {} thread(s)",
            spec.name,
            opts.seeds,
            selected.len(),
            rayon::Pool::current_threads(),
        );
        // Seeds fan out over the pool but come back in seed order, so the
        // first violating seed reported is thread-count independent.
        let verdicts: Vec<(u64, ScenarioVerdict)> = (0..opts.seeds)
            .into_par_iter()
            .map(|i| {
                let seed = base.wrapping_add(i);
                (seed, check_spec_with(spec, seed, &selected))
            })
            .collect();
        for (seed, verdict) in &verdicts {
            if !verdict.is_clean() {
                println!(
                    "seed {seed}: {} violation(s)",
                    verdict.all_violations().len()
                );
                print_violations(&verdict.all_violations());
                std::process::exit(1);
            }
        }
        println!(
            "check: scenario '{}' x {} seed(s) x {} matchmaker(s) clean, all oracles passed",
            spec.name,
            opts.seeds,
            selected.len()
        );
        return;
    }

    println!(
        "checking {} scenario(s) from seed {base}, {} matchmaker(s) [{mm_labels}], {} thread(s){}{}",
        opts.seeds,
        selected.len(),
        rayon::Pool::current_threads(),
        match lease {
            Some(l) => format!(
                " [leases: ttl {:.0}s renew {:.0}s grace {:.0}s, {} placement]",
                l.ttl_secs,
                l.renew_secs,
                l.grace_secs,
                l.placement.label()
            ),
            None => String::new(),
        },
        if inject == Inject::default() {
            String::new()
        } else {
            format!(" [injected bug: {}]", opts.inject_bug.as_deref().unwrap())
        }
    );
    // The sweep fans seeds out over the work-stealing pool but reports the
    // same (lowest) violating seed a sequential sweep would, so the repro
    // artifact — and the shrink below, which stays sequential — are
    // identical at any thread count.
    let mut last_reported = 0;
    let outcome =
        dgrid::check::sweep_with_lease(base, opts.seeds, inject, lease, &selected, |done| {
            if done / 10 > last_reported / 10 && done < opts.seeds {
                eprintln!("  ... {done}/{} clean", opts.seeds);
            }
            last_reported = done;
        });
    match outcome {
        dgrid::check::SweepOutcome::AllClean { .. } => {}
        dgrid::check::SweepOutcome::Violation {
            seed,
            scenario,
            verdict,
            ..
        } => {
            println!(
                "seed {seed}: {} violation(s)",
                verdict.all_violations().len()
            );
            print_violations(&verdict.all_violations());

            // Shrink under the first violating matchmaker when one exists;
            // differential-only violations re-check every matchmaker.
            let failing_mm = verdict
                .runs
                .iter()
                .find(|r| !r.violations.is_empty())
                .map(|r| r.matchmaker);
            let result = shrink(
                &scenario,
                |cand| match failing_mm {
                    Some(mm) => !check_run(cand, mm, inject).violations.is_empty(),
                    None => !check_scenario_with(cand, inject, &selected).is_clean(),
                },
                150,
            );
            let shrunk_violations = match failing_mm {
                Some(mm) => check_run(&result.scenario, mm, inject).violations,
                None => check_scenario_with(&result.scenario, inject, &selected).all_violations(),
            };
            println!(
                "shrunk {} -> {} nodes, {} -> {} jobs, {} -> {} fault event(s) in {} run(s)",
                scenario.nodes,
                result.scenario.nodes,
                scenario.jobs,
                result.scenario.jobs,
                fault_event_count(&scenario),
                fault_event_count(&result.scenario),
                result.runs_used,
            );

            let out = opts
                .out
                .clone()
                .unwrap_or_else(|| "dgrid-check-repro.json".to_string());
            let artifact = ReproArtifact {
                scenario: result.scenario,
                matchmaker: failing_mm,
                inject,
                violations: shrunk_violations,
                original: Some(scenario),
            };
            artifact.write(Path::new(&out)).unwrap_or_else(|e| {
                eprintln!("cannot write repro artifact {out}: {e}");
                std::process::exit(2);
            });
            println!("wrote repro artifact to {out} (replay with: dgrid check --replay {out})");
            std::process::exit(1);
        }
    }
    println!(
        "check: {} scenario(s) x {} matchmaker(s) clean, all oracles passed",
        opts.seeds,
        selected.len()
    );
}

/// One timed point of the bench sweep.
#[derive(serde::Serialize)]
struct SweepPoint {
    threads: usize,
    wall_secs: f64,
    events: u64,
    events_per_sec: f64,
    speedup_vs_1: f64,
}

/// The full `bench sweep` result, as written to `--json`.
#[derive(serde::Serialize)]
struct SweepRecord {
    algorithm: String,
    scenario: String,
    nodes: usize,
    jobs: usize,
    replications: usize,
    seed: u64,
    available_parallelism: usize,
    reports_identical: bool,
    runs: Vec<SweepPoint>,
}

/// Counts events without retaining them — the cheapest observer that still
/// measures throughput, so the timed runs pay (almost) nothing for it.
#[derive(Clone, Default)]
struct CountingObserver(std::rc::Rc<std::cell::Cell<u64>>);

impl dgrid::core::Observer for CountingObserver {
    fn on_event(&mut self, _at: SimTime, _event: dgrid::core::TraceEvent) {
        self.0.set(self.0.get() + 1);
    }
}

/// `dgrid bench sweep`: time one replicated cell at increasing thread
/// counts, report events/sec and the speedup over one thread, and verify
/// the serialized reports are byte-identical at every count.
fn cmd_bench_sweep(opts: &Opts) {
    use rayon::prelude::*;

    let max_threads = opts
        .threads
        .unwrap_or_else(rayon::Pool::current_threads)
        // Always measure at least two threads so the cross-thread-count
        // identity check runs even on a single-core box.
        .max(2);
    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t <= max_threads {
        thread_counts.push(t);
        t *= 2;
    }
    if *thread_counts.last().unwrap() != max_threads {
        thread_counts.push(max_threads);
    }

    println!(
        "bench sweep: {} x {} — {} nodes, {} jobs, {} replications, seed {}",
        opts.algorithm.label(),
        opts.scenario.label(),
        opts.nodes,
        opts.jobs,
        opts.replications,
        opts.seed
    );

    // One timed pass per thread count: every replication regenerates its
    // workload from its own seed and counts its events.
    let timed_pass = |threads: usize| -> (f64, u64, String) {
        rayon::Pool::install(threads, || {
            let started = std::time::Instant::now();
            let results: Vec<(SimReport, u64)> = (0..opts.replications as u64)
                .into_par_iter()
                .map(|r| {
                    let seed = opts.seed ^ (r + 1);
                    let workload = paper_scenario(opts.scenario, opts.nodes, opts.jobs, seed);
                    let mut engine = build_engine(opts, opts.algorithm, &workload, seed);
                    let counter = CountingObserver::default();
                    engine.set_observer(Box::new(counter.clone()));
                    let report = engine.run();
                    (report, counter.0.get())
                })
                .collect();
            let wall = started.elapsed().as_secs_f64();
            let events: u64 = results.iter().map(|(_, e)| e).sum();
            let reports: Vec<SimReport> = results.into_iter().map(|(r, _)| r).collect();
            let serialized = serde_json::to_string(&reports).expect("serialize reports");
            (wall, events, serialized)
        })
    };

    // Warm-up (untimed): touch every code path once so the first timed
    // pass doesn't also pay first-fault costs.
    let _ = timed_pass(1);

    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>12}",
        "threads", "wall", "events", "events/sec", "speedup"
    );
    let mut runs: Vec<SweepPoint> = Vec::new();
    let mut baseline_secs = 0.0;
    let mut baseline_reports = String::new();
    let mut reports_identical = true;
    for &threads in &thread_counts {
        let (wall_secs, events, serialized) = timed_pass(threads);
        if threads == 1 {
            baseline_secs = wall_secs;
            baseline_reports = serialized;
        } else if serialized != baseline_reports {
            reports_identical = false;
            eprintln!("WARNING: reports at {threads} thread(s) differ from 1 thread");
        }
        let speedup = if wall_secs > 0.0 {
            baseline_secs / wall_secs
        } else {
            1.0
        };
        println!(
            "{:>8} {:>9.2}s {:>12} {:>14.0} {:>11.2}x",
            threads,
            wall_secs,
            events,
            events as f64 / wall_secs.max(1e-9),
            speedup,
        );
        runs.push(SweepPoint {
            threads,
            wall_secs,
            events,
            events_per_sec: events as f64 / wall_secs.max(1e-9),
            speedup_vs_1: speedup,
        });
    }
    if reports_identical {
        println!("reports byte-identical across all thread counts");
    }

    if let Some(path) = &opts.json {
        let record = SweepRecord {
            algorithm: opts.algorithm.label().to_string(),
            scenario: opts.scenario.label().to_string(),
            nodes: opts.nodes,
            jobs: opts.jobs,
            replications: opts.replications,
            seed: opts.seed,
            available_parallelism: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            reports_identical,
            runs,
        };
        let f = std::fs::File::create(path).expect("create json output");
        serde_json::to_writer_pretty(f, &record).expect("write json");
        eprintln!("wrote bench sweep to {path}");
    }
    if !reports_identical {
        std::process::exit(1);
    }
}

/// Threads-1 throughput of `bench sweep` at its 96-node cell (pinned in
/// `results/BENCH_sweep.json`). `bench scale` extrapolates it linearly —
/// events/sec × 96/N — as the "what the old keyed-map kernel would do"
/// reference each scale point is compared against.
const SWEEP_BASELINE_EVENTS_PER_SEC: f64 = 518_682.0;
const SWEEP_BASELINE_NODES: f64 = 96.0;

/// Peak resident set size (VmHWM) in KiB from `/proc/self/status`, or 0
/// where procfs is unavailable. The high-water mark is process-wide and
/// monotone, so on an ascending size ladder each point's reading is the
/// peak of the largest grid built so far.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

/// One measured grid size of `bench scale`.
#[derive(serde::Serialize)]
struct ScalePoint {
    nodes: usize,
    jobs: usize,
    setup_secs: f64,
    run_secs: f64,
    events: u64,
    events_per_sec: f64,
    /// The 96-node sweep baseline extrapolated linearly to this size.
    baseline_events_per_sec: f64,
    speedup_vs_baseline: f64,
    peak_rss_kb: u64,
    /// Sharded-kernel throughput at each `--threads` ladder point (empty
    /// unless a thread ladder was requested).
    threads: Vec<ThreadPoint>,
}

/// One `--threads` ladder point of `bench scale`: the same single
/// replication executed by the sharded conservative-window kernel at this
/// worker-thread count. `speedup_vs_1` compares against the sharded run at
/// one thread, so it isolates parallel efficiency from kernel overhead.
#[derive(serde::Serialize)]
struct ThreadPoint {
    threads: usize,
    run_secs: f64,
    events: u64,
    events_per_sec: f64,
    speedup_vs_1: f64,
}

/// The full `bench scale` result, as written to `--json`.
#[derive(serde::Serialize)]
struct ScaleRecord {
    algorithm: String,
    scenario: String,
    replications: usize,
    seed: u64,
    min_events_per_sec: Option<f64>,
    min_speedup: Option<f64>,
    available_parallelism: usize,
    sizes: Vec<ScalePoint>,
}

/// `dgrid bench scale`: measure the kernel at increasing grid sizes —
/// setup time (workload generation + engine construction, including the
/// bulk overlay bootstrap), steady-state events/sec, and peak RSS — and
/// compare each size against the linear extrapolation of the 96-node
/// `bench sweep` baseline. With `--min-events-per-sec` the run doubles as
/// a regression guard, exiting non-zero if any size falls below the floor.
fn cmd_bench_scale(opts: &Opts) {
    let sizes = opts
        .sizes
        .clone()
        .unwrap_or_else(|| vec![1_000, 10_000, 100_000]);
    // `--jobs` pins the workload; the default scales it with the grid so
    // the timed phase stays dominated by matchmaking, not by idle ticks.
    let jobs_for = |nodes: usize| {
        if opts.jobs > 0 {
            opts.jobs
        } else {
            (nodes / 10).max(400)
        }
    };

    println!(
        "bench scale: {} x {} — sizes {:?}, {} replication(s), seed {}",
        opts.algorithm.label(),
        opts.scenario.label(),
        sizes,
        opts.replications,
        opts.seed
    );

    // Warm-up (untimed): touch every code path once at a small size so the
    // first timed point doesn't also pay first-fault costs.
    {
        let workload = paper_scenario(opts.scenario, 256, 400, opts.seed);
        let mut engine = build_engine(opts, opts.algorithm, &workload, opts.seed);
        engine.set_observer(Box::new(CountingObserver::default()));
        let _ = engine.run();
    }

    println!(
        "{:>10} {:>9} {:>10} {:>10} {:>10} {:>12} {:>11} {:>10}",
        "nodes", "jobs", "setup", "run", "events", "events/sec", "xbaseline", "peak rss"
    );
    let mut points: Vec<ScalePoint> = Vec::new();
    let mut below_floor = false;
    for &nodes in &sizes {
        let jobs = jobs_for(nodes);
        let mut setup_secs = 0.0;
        let mut run_secs = 0.0;
        let mut events = 0u64;
        for r in 0..opts.replications as u64 {
            let seed = opts.seed ^ (r + 1);
            let started = std::time::Instant::now();
            let workload = paper_scenario(opts.scenario, nodes, jobs, seed);
            let mut engine = build_engine(opts, opts.algorithm, &workload, seed);
            setup_secs += started.elapsed().as_secs_f64();
            let counter = CountingObserver::default();
            engine.set_observer(Box::new(counter.clone()));
            let started = std::time::Instant::now();
            let _ = engine.run();
            run_secs += started.elapsed().as_secs_f64();
            events += counter.0.get();
        }
        let events_per_sec = events as f64 / run_secs.max(1e-9);
        let baseline_events_per_sec =
            SWEEP_BASELINE_EVENTS_PER_SEC * SWEEP_BASELINE_NODES / nodes as f64;
        let speedup_vs_baseline = events_per_sec / baseline_events_per_sec;
        let peak_rss_kb = peak_rss_kb();
        println!(
            "{:>10} {:>9} {:>9.2}s {:>9.2}s {:>10} {:>12.0} {:>10.1}x {:>8}MB",
            nodes,
            jobs,
            setup_secs,
            run_secs,
            events,
            events_per_sec,
            speedup_vs_baseline,
            peak_rss_kb / 1024,
        );
        if let Some(floor) = opts.min_events_per_sec {
            if events_per_sec < floor {
                below_floor = true;
                eprintln!(
                    "REGRESSION: {nodes} nodes ran at {events_per_sec:.0} events/sec, \
                     below the --min-events-per-sec floor {floor:.0}"
                );
            }
        }

        // The `--threads` ladder: the same replication(s) on the sharded
        // conservative-window kernel at each requested worker count.
        // Speedup is sharded-vs-sharded (t vs 1), so it measures parallel
        // efficiency, not the windowing overhead against the sequential
        // kernel above.
        let mut thread_points: Vec<ThreadPoint> = Vec::new();
        if let Some(requested) = &opts.thread_axis {
            let mut axis = requested.clone();
            axis.sort_unstable();
            axis.dedup();
            if axis[0] != 1 {
                axis.insert(0, 1); // the speedup baseline is always measured
            }
            let mut base_eps = 0.0;
            for &t in &axis {
                let (t_run_secs, t_events) = rayon::Pool::install(t, || {
                    let mut run_secs = 0.0;
                    let mut events = 0u64;
                    for r in 0..opts.replications as u64 {
                        let seed = opts.seed ^ (r + 1);
                        let workload = paper_scenario(opts.scenario, nodes, jobs, seed);
                        let mut engine = build_engine(opts, opts.algorithm, &workload, seed);
                        engine.set_sharded_execution(Engine::DEFAULT_SHARDS);
                        let counter = CountingObserver::default();
                        engine.set_observer(Box::new(counter.clone()));
                        let started = std::time::Instant::now();
                        let _ = engine.run();
                        run_secs += started.elapsed().as_secs_f64();
                        events += counter.0.get();
                    }
                    (run_secs, events)
                });
                let eps = t_events as f64 / t_run_secs.max(1e-9);
                if t == axis[0] {
                    base_eps = eps;
                }
                let speedup = eps / base_eps.max(1e-9);
                println!(
                    "{:>10} {:>9} {:>10} {:>9.2}s {:>10} {:>12.0} {:>10.2}x",
                    "",
                    "sharded",
                    format!("t={t}"),
                    t_run_secs,
                    t_events,
                    eps,
                    speedup,
                );
                thread_points.push(ThreadPoint {
                    threads: t,
                    run_secs: t_run_secs,
                    events: t_events,
                    events_per_sec: eps,
                    speedup_vs_1: speedup,
                });
            }
            if let (Some(floor), Some(top)) = (opts.min_speedup, thread_points.last()) {
                if top.threads > 1 && top.speedup_vs_1 < floor {
                    below_floor = true;
                    eprintln!(
                        "REGRESSION: {nodes} nodes at {} threads reached only \
                         {:.2}x over 1 thread, below the --min-speedup floor {floor:.2}",
                        top.threads, top.speedup_vs_1
                    );
                }
            }
        }

        points.push(ScalePoint {
            nodes,
            jobs,
            setup_secs,
            run_secs,
            events,
            events_per_sec,
            baseline_events_per_sec,
            speedup_vs_baseline,
            peak_rss_kb,
            threads: thread_points,
        });
    }

    if let Some(path) = &opts.json {
        let record = ScaleRecord {
            algorithm: opts.algorithm.label().to_string(),
            scenario: opts.scenario.label().to_string(),
            replications: opts.replications,
            seed: opts.seed,
            min_events_per_sec: opts.min_events_per_sec,
            min_speedup: opts.min_speedup,
            available_parallelism: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            sizes: points,
        };
        let f = std::fs::File::create(path).expect("create json output");
        serde_json::to_writer_pretty(f, &record).expect("write json");
        eprintln!("wrote bench scale to {path}");
    }
    if below_floor {
        std::process::exit(1);
    }
}

/// One overlay row of `bench overlays`, as written to `--json`.
#[derive(serde::Serialize)]
struct OverlayPoint {
    algorithm: String,
    mean_wait: f64,
    std_wait: f64,
    match_hops: f64,
    owner_hops: f64,
    hops_per_job: f64,
    completion_rate: f64,
    wall_secs: f64,
}

/// The full `bench overlays` result, as written to `--json`.
#[derive(serde::Serialize)]
struct OverlayRecord {
    scenario: String,
    nodes: usize,
    jobs: usize,
    replications: usize,
    seed: u64,
    threads: usize,
    overlays: Vec<OverlayPoint>,
}

/// `dgrid bench overlays`: time the RN-Tree matchmaker on every overlay
/// substrate over the same replicated workload and compare lookup-hop cost
/// against the paper's wait-time metric (experiment `T-overlay`).
fn cmd_bench_overlays(opts: &Opts) {
    use rayon::prelude::*;

    println!(
        "bench overlays: {} — {} nodes, {} jobs, {} replications, seed {}",
        opts.scenario.label(),
        opts.nodes,
        opts.jobs,
        opts.replications,
        opts.seed
    );
    println!(
        "{:<16} {:>10} {:>10} {:>11} {:>11} {:>11} {:>9}",
        "algorithm", "mean wait", "std wait", "match hops", "owner hops", "completion", "wall"
    );

    let mut overlays: Vec<OverlayPoint> = Vec::new();
    for alg in Algorithm::OVERLAYS {
        let started = std::time::Instant::now();
        // Same replication scheme as `bench sweep`: each replication
        // regenerates its workload from its own derived seed.
        let reports: Vec<SimReport> = (0..opts.replications as u64)
            .into_par_iter()
            .map(|r| {
                let seed = opts.seed ^ (r + 1);
                let workload = paper_scenario(opts.scenario, opts.nodes, opts.jobs, seed);
                build_engine(opts, alg, &workload, seed).run()
            })
            .collect();
        let wall_secs = started.elapsed().as_secs_f64();
        let n = reports.len() as f64;
        let point = OverlayPoint {
            algorithm: alg.label().to_string(),
            mean_wait: reports.iter().map(SimReport::mean_wait).sum::<f64>() / n,
            std_wait: reports.iter().map(SimReport::std_wait).sum::<f64>() / n,
            match_hops: reports.iter().map(|r| r.match_hops.mean()).sum::<f64>() / n,
            owner_hops: reports.iter().map(|r| r.owner_hops.mean()).sum::<f64>() / n,
            hops_per_job: reports
                .iter()
                .map(|r| r.match_hops.mean() + r.owner_hops.mean())
                .sum::<f64>()
                / n,
            completion_rate: reports.iter().map(SimReport::completion_rate).sum::<f64>() / n,
            wall_secs,
        };
        println!(
            "{:<16} {:>9.1}s {:>9.1}s {:>11.2} {:>11.2} {:>10.1}% {:>8.2}s",
            point.algorithm,
            point.mean_wait,
            point.std_wait,
            point.match_hops,
            point.owner_hops,
            100.0 * point.completion_rate,
            point.wall_secs,
        );
        overlays.push(point);
    }

    if let Some(path) = &opts.json {
        let record = OverlayRecord {
            scenario: opts.scenario.label().to_string(),
            nodes: opts.nodes,
            jobs: opts.jobs,
            replications: opts.replications,
            seed: opts.seed,
            threads: rayon::Pool::current_threads(),
            overlays,
        };
        let f = std::fs::File::create(path).expect("create json output");
        serde_json::to_writer_pretty(f, &record).expect("write json");
        eprintln!("wrote bench overlays to {path}");
    }
}

/// One configuration row of `bench leases`, as written to `--json`.
#[derive(serde::Serialize)]
struct LeasePoint {
    config: String,
    mean_wait: f64,
    std_wait: f64,
    load_fairness: f64,
    hops_per_job: f64,
    completion_rate: f64,
    lease_renewals: u64,
    lease_expiries: u64,
    lease_transfers: u64,
    wall_secs: f64,
}

/// The full `bench leases` result, as written to `--json`.
#[derive(serde::Serialize)]
struct LeaseRecord {
    algorithm: String,
    scenario: String,
    nodes: usize,
    jobs: usize,
    replications: usize,
    seed: u64,
    lease_ttl_secs: f64,
    lease_renew_secs: f64,
    lease_grace_secs: f64,
    configs: Vec<LeasePoint>,
}

/// `dgrid bench leases`: the `T-lease` experiment. Run the RN-Tree
/// matchmaker on the Tapestry substrate — the most placement-skewed overlay
/// — three ways over the same replicated workload: reassign-on-death (no
/// leases), leases with the paper-faithful hash placement, and leases with
/// load-aware re-placement. Compares load fairness and wait times to show
/// what load-aware placement buys back from the substrate's key skew.
fn cmd_bench_leases(opts: &Opts) {
    use rayon::prelude::*;

    let alg = Algorithm::RnTreeTapestry;
    let ttl = opts.lease_ttl.unwrap_or(600.0);
    let renew = opts.lease_renew.unwrap_or(150.0);
    let grace = opts.lease_grace.unwrap_or(60.0);

    println!(
        "bench leases: {} x {} — {} nodes, {} jobs, {} replications, seed {}, \
         ttl {:.0}s renew {:.0}s grace {:.0}s",
        alg.label(),
        opts.scenario.label(),
        opts.nodes,
        opts.jobs,
        opts.replications,
        opts.seed,
        ttl,
        renew,
        grace,
    );
    println!(
        "{:<22} {:>10} {:>10} {:>9} {:>10} {:>11} {:>9} {:>9}",
        "config", "mean wait", "std wait", "fairness", "hops/job", "completion", "renewals", "wall"
    );

    let configs: [(&str, Option<PlacementPolicy>); 3] = [
        ("reassign (no leases)", None),
        ("leases / hash", Some(PlacementPolicy::Hash)),
        ("leases / load-aware", Some(PlacementPolicy::LoadAware)),
    ];
    let mut points: Vec<LeasePoint> = Vec::new();
    for (label, placement) in configs {
        let mut cfg_opts = opts.clone();
        match placement {
            Some(p) => {
                cfg_opts.lease_ttl = Some(ttl);
                cfg_opts.lease_renew = Some(renew);
                cfg_opts.lease_grace = Some(grace);
                cfg_opts.placement = Some(p);
            }
            None => {
                cfg_opts.lease_ttl = None;
                cfg_opts.lease_renew = None;
                cfg_opts.lease_grace = None;
                cfg_opts.placement = None;
            }
        }
        let started = std::time::Instant::now();
        let reports: Vec<SimReport> = (0..opts.replications as u64)
            .into_par_iter()
            .map(|r| {
                let seed = opts.seed ^ (r + 1);
                let workload = paper_scenario(opts.scenario, opts.nodes, opts.jobs, seed);
                build_engine(&cfg_opts, alg, &workload, seed).run()
            })
            .collect();
        let wall_secs = started.elapsed().as_secs_f64();
        let n = reports.len() as f64;
        let point = LeasePoint {
            config: label.to_string(),
            mean_wait: reports.iter().map(SimReport::mean_wait).sum::<f64>() / n,
            std_wait: reports.iter().map(SimReport::std_wait).sum::<f64>() / n,
            load_fairness: reports.iter().map(SimReport::load_fairness).sum::<f64>() / n,
            hops_per_job: reports
                .iter()
                .map(|r| r.match_hops.mean() + r.owner_hops.mean())
                .sum::<f64>()
                / n,
            completion_rate: reports.iter().map(SimReport::completion_rate).sum::<f64>() / n,
            lease_renewals: reports.iter().map(|r| r.lease_renewals).sum(),
            lease_expiries: reports.iter().map(|r| r.lease_expiries).sum(),
            lease_transfers: reports.iter().map(|r| r.lease_transfers).sum(),
            wall_secs,
        };
        println!(
            "{:<22} {:>9.1}s {:>9.1}s {:>9.3} {:>10.2} {:>10.1}% {:>9} {:>8.2}s",
            point.config,
            point.mean_wait,
            point.std_wait,
            point.load_fairness,
            point.hops_per_job,
            100.0 * point.completion_rate,
            point.lease_renewals,
            point.wall_secs,
        );
        points.push(point);
    }

    if let Some(path) = &opts.json {
        let record = LeaseRecord {
            algorithm: alg.label().to_string(),
            scenario: opts.scenario.label().to_string(),
            nodes: opts.nodes,
            jobs: opts.jobs,
            replications: opts.replications,
            seed: opts.seed,
            lease_ttl_secs: ttl,
            lease_renew_secs: renew,
            lease_grace_secs: grace,
            configs: points,
        };
        let f = std::fs::File::create(path).expect("create json output");
        serde_json::to_writer_pretty(f, &record).expect("write json");
        eprintln!("wrote bench leases to {path}");
    }
}

/// One tenant row of one algorithm point of `bench scenarios`: per-tenant
/// accumulators pooled across replications (counts add, means combine
/// count-weighted).
#[derive(serde::Serialize)]
struct TenantPoint {
    tenant: String,
    jobs: u64,
    mean_wait: f64,
}

/// One algorithm row of one scenario cell of `bench scenarios`.
#[derive(serde::Serialize)]
struct ScenarioAlgoPoint {
    algorithm: String,
    mean_wait: f64,
    std_wait: f64,
    hops_per_job: f64,
    completion_rate: f64,
    tenant_fairness: f64,
    tenants: Vec<TenantPoint>,
    wall_secs: f64,
}

/// One scenario cell of `bench scenarios`.
#[derive(serde::Serialize)]
struct ScenarioCell {
    scenario: String,
    nodes: usize,
    jobs: usize,
    tenants: Vec<String>,
    algorithms: Vec<ScenarioAlgoPoint>,
}

/// The full `bench scenarios` result, as written to `--json`.
#[derive(serde::Serialize)]
struct ScenarioBenchRecord {
    replications: usize,
    seed: u64,
    threads: usize,
    scenarios: Vec<ScenarioCell>,
}

/// `dgrid bench scenarios`: the `T-scenario` experiment. Run every
/// matchmaker family — including the pub/sub discovery baseline — over the
/// production-shaped scenario presets (or the one spec `--scenario-file`
/// names) and compare wait times, completion, and per-tenant fairness
/// under flash crowds, correlated outages, and diurnal load.
fn cmd_bench_scenarios(opts: &Opts) {
    use rayon::prelude::*;

    // The six matchmaker families the differential checker sweeps, in the
    // `MatchmakerChoice::ALL` reporting order.
    const FAMILIES: [Algorithm; 6] = [
        Algorithm::Central,
        Algorithm::RnTree,
        Algorithm::RnTreePastry,
        Algorithm::RnTreeTapestry,
        Algorithm::Can,
        Algorithm::PubSub,
    ];

    let specs: Vec<ScenarioSpec> = match &opts.scenario_spec {
        Some(spec) => vec![spec.clone()],
        None => SCENARIO_PRESETS
            .iter()
            .map(|l| scenario_preset(l).expect("registry preset resolves"))
            .collect(),
    };

    let mut cells: Vec<ScenarioCell> = Vec::new();
    for spec in &specs {
        println!(
            "bench scenarios: {} — {} nodes, {} jobs, tenants [{}], {} replications, seed {}",
            spec.name,
            spec.nodes,
            spec.jobs,
            spec.tenants
                .iter()
                .map(|t| t.name.as_str())
                .collect::<Vec<_>>()
                .join(", "),
            opts.replications,
            opts.seed,
        );
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>11} {:>9} {:>9}",
            "algorithm", "mean wait", "std wait", "hops/job", "completion", "fairness", "wall"
        );
        let mut algos: Vec<ScenarioAlgoPoint> = Vec::new();
        for alg in FAMILIES {
            let started = std::time::Instant::now();
            // Same replication scheme as every other bench: replication r
            // recompiles the spec from its own derived seed.
            let reports: Vec<SimReport> = (0..opts.replications as u64)
                .into_par_iter()
                .map(|r| {
                    let seed = opts.seed ^ (r + 1);
                    build_spec_engine(opts, alg, spec, seed).run()
                })
                .collect();
            let wall_secs = started.elapsed().as_secs_f64();
            let n = reports.len() as f64;
            let tenants: Vec<TenantPoint> = spec
                .tenants
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let (jobs, weighted) = reports
                        .iter()
                        .filter_map(|r| r.client_waits.get(&(i as u32)))
                        .fold((0u64, 0.0f64), |(c, w), s| {
                            (c + s.count(), w + s.mean() * s.count() as f64)
                        });
                    TenantPoint {
                        tenant: t.name.clone(),
                        jobs,
                        mean_wait: if jobs > 0 {
                            weighted / jobs as f64
                        } else {
                            0.0
                        },
                    }
                })
                .collect();
            let point = ScenarioAlgoPoint {
                algorithm: alg.label().to_string(),
                mean_wait: reports.iter().map(SimReport::mean_wait).sum::<f64>() / n,
                std_wait: reports.iter().map(SimReport::std_wait).sum::<f64>() / n,
                hops_per_job: reports
                    .iter()
                    .map(|r| r.match_hops.mean() + r.owner_hops.mean())
                    .sum::<f64>()
                    / n,
                completion_rate: reports.iter().map(SimReport::completion_rate).sum::<f64>() / n,
                tenant_fairness: reports.iter().map(SimReport::tenant_fairness).sum::<f64>() / n,
                tenants,
                wall_secs,
            };
            println!(
                "{:<16} {:>9.1}s {:>9.1}s {:>10.2} {:>10.1}% {:>9.3} {:>8.2}s",
                point.algorithm,
                point.mean_wait,
                point.std_wait,
                point.hops_per_job,
                100.0 * point.completion_rate,
                point.tenant_fairness,
                point.wall_secs,
            );
            let detail = point
                .tenants
                .iter()
                .map(|t| format!("{} {} @ {:.1}s", t.tenant, t.jobs, t.mean_wait))
                .collect::<Vec<_>>()
                .join(", ");
            println!("{:<16}   tenants: {detail}", "");
            algos.push(point);
        }
        cells.push(ScenarioCell {
            scenario: spec.name.clone(),
            nodes: spec.nodes,
            jobs: spec.jobs,
            tenants: spec.tenants.iter().map(|t| t.name.clone()).collect(),
            algorithms: algos,
        });
        println!();
    }

    if let Some(path) = &opts.json {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create json output directory");
            }
        }
        let record = ScenarioBenchRecord {
            replications: opts.replications,
            seed: opts.seed,
            threads: rayon::Pool::current_threads(),
            scenarios: cells,
        };
        let f = std::fs::File::create(path).expect("create json output");
        serde_json::to_writer_pretty(f, &record).expect("write json");
        eprintln!("wrote bench scenarios to {path}");
    }
}

/// An [`StreamAnalytics`] handle that survives the engine that consumes it,
/// so the online sketches can be compared against the post-hoc report after
/// the run. Never shared across threads — one replication builds its own.
#[derive(Clone)]
struct SharedAnalytics(std::rc::Rc<std::cell::RefCell<StreamAnalytics>>);

impl dgrid::core::Observer for SharedAnalytics {
    fn on_event(&mut self, at: SimTime, event: dgrid::core::TraceEvent) {
        self.0.borrow_mut().feed(at.as_nanos(), &event);
    }
}

/// Records the full event sequence of a replication, so the serializer
/// replay can time each format over *identical* input with the engine
/// itself out of the measurement.
#[derive(Clone, Default)]
struct CaptureObserver(std::rc::Rc<std::cell::RefCell<Vec<(SimTime, dgrid::core::TraceEvent)>>>);

impl dgrid::core::Observer for CaptureObserver {
    fn on_event(&mut self, at: SimTime, event: dgrid::core::TraceEvent) {
        self.0.borrow_mut().push((at, event));
    }
}

/// One observer row of `bench stream`, as written to `--json`.
#[derive(serde::Serialize)]
struct StreamPoint {
    observer: String,
    wall_secs: f64,
    serialize_secs: f64,
    serialize_ns_per_event: f64,
    events: u64,
    events_per_sec: f64,
    bytes: u64,
}

/// One online-vs-post-hoc percentile comparison of `bench stream`.
#[derive(serde::Serialize)]
struct OnlineCheck {
    metric: String,
    quantile: f64,
    post_hoc_ns: u64,
    bucket_lo_ns: u64,
    bucket_hi_ns: u64,
    ok: bool,
}

/// The full `bench stream` result, as written to `--json`.
#[derive(serde::Serialize)]
struct StreamRecord {
    algorithm: String,
    scenario: String,
    nodes: usize,
    jobs: usize,
    replications: usize,
    seed: u64,
    threads: usize,
    jsonl_bytes: u64,
    binary_bytes: u64,
    bytes_ratio: f64,
    binary_cheaper_bytes: bool,
    binary_cheaper_wall: bool,
    online_ok: bool,
    observers: Vec<StreamPoint>,
    online_checks: Vec<OnlineCheck>,
}

/// `dgrid bench stream`: the `T-stream` experiment. Time the replicated
/// cell under three observers — Null (no tracing), JSONL, and binary, each
/// streaming to `std::io::sink` — and report events/sec plus bytes written.
/// The per-format serialization cost (a few milliseconds) sits under tens
/// of milliseconds of simulation, so the strict wall-time comparison
/// replays the captured event sequence through each serializer directly.
/// The binary format must be strictly cheaper than JSONL in both bytes and
/// serialization wall time, and the online percentile sketches must agree
/// with the post-hoc report within one log₂ bucket; either failure exits
/// non-zero.
fn cmd_bench_stream(opts: &Opts) {
    use rayon::prelude::*;

    const REPEATS: usize = 5;
    const SER_REPEATS: usize = 16;

    println!(
        "bench stream: {} x {} — {} nodes, {} jobs, {} replications, seed {}, {} thread(s)",
        opts.algorithm.label(),
        opts.scenario.label(),
        opts.nodes,
        opts.jobs,
        opts.replications,
        opts.seed,
        rayon::Pool::current_threads(),
    );

    // Warm-up pass that doubles as event capture: every observer sees the
    // exact same deterministic event sequence, so recording it once gives
    // both the event count and the input for the serializer replay below.
    let captured: Vec<Vec<(SimTime, dgrid::core::TraceEvent)>> = (0..opts.replications as u64)
        .into_par_iter()
        .map(|r| {
            let seed = opts.seed ^ (r + 1);
            let workload = paper_scenario(opts.scenario, opts.nodes, opts.jobs, seed);
            let mut engine = build_engine(opts, opts.algorithm, &workload, seed);
            let cap = CaptureObserver::default();
            engine.set_observer(Box::new(cap.clone()));
            engine.run();
            cap.0.take()
        })
        .collect();
    let events: u64 = captured.iter().map(|rep| rep.len() as u64).sum();

    // Best-of-REPEATS wall time per observer; bytes come from the summed
    // `stream_bytes_written` counters (identical across repeats).
    let timed = |mode: &str| -> (f64, u64) {
        let mut best = f64::INFINITY;
        let mut bytes = 0u64;
        for _ in 0..REPEATS {
            let started = std::time::Instant::now();
            let reports: Vec<SimReport> = (0..opts.replications as u64)
                .into_par_iter()
                .map(|r| {
                    let seed = opts.seed ^ (r + 1);
                    let workload = paper_scenario(opts.scenario, opts.nodes, opts.jobs, seed);
                    let mut engine = build_engine(opts, opts.algorithm, &workload, seed);
                    match mode {
                        "jsonl" => {
                            engine.set_observer(Box::new(JsonlObserver::new(std::io::sink())))
                        }
                        "binary" => {
                            engine.set_observer(Box::new(BinaryObserver::new(std::io::sink())))
                        }
                        _ => {}
                    }
                    engine.run()
                })
                .collect();
            best = best.min(started.elapsed().as_secs_f64());
            bytes = reports.iter().map(|r| r.stream_bytes_written).sum();
        }
        (best, bytes)
    };

    // Best-of-SER_REPEATS replay of the captured event sequence through a
    // fresh serializer per replication: identical input for every format,
    // and no simulation noise drowning a few milliseconds of encoding.
    let serialize = |mode: &str| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..SER_REPEATS {
            let started = std::time::Instant::now();
            for rep in &captured {
                let mut obs: Box<dyn dgrid::core::Observer> = match mode {
                    "jsonl" => Box::new(JsonlObserver::new(std::io::sink())),
                    "binary" => Box::new(BinaryObserver::new(std::io::sink())),
                    _ => Box::new(CountingObserver::default()),
                };
                for &(at, event) in rep {
                    obs.on_event(at, event);
                }
            }
            best = best.min(started.elapsed().as_secs_f64());
        }
        best
    };

    println!(
        "{:<10} {:>10} {:>11} {:>9} {:>12} {:>14} {:>12}",
        "observer", "wall", "serialize", "ns/event", "events", "events/sec", "bytes"
    );
    let mut points: Vec<StreamPoint> = Vec::new();
    for mode in ["null", "jsonl", "binary"] {
        let (wall_secs, bytes) = timed(mode);
        let serialize_secs = serialize(mode);
        let serialize_ns_per_event = serialize_secs * 1e9 / (events as f64).max(1.0);
        println!(
            "{:<10} {:>9.3}s {:>10.4}s {:>9.1} {:>12} {:>14.0} {:>12}",
            mode,
            wall_secs,
            serialize_secs,
            serialize_ns_per_event,
            events,
            events as f64 / wall_secs.max(1e-9),
            bytes,
        );
        points.push(StreamPoint {
            observer: mode.to_string(),
            wall_secs,
            serialize_secs,
            serialize_ns_per_event,
            events,
            events_per_sec: events as f64 / wall_secs.max(1e-9),
            bytes,
        });
    }
    let (jsonl_ser, jsonl_bytes) = (points[1].serialize_secs, points[1].bytes);
    let (bin_ser, bin_bytes) = (points[2].serialize_secs, points[2].bytes);
    let bytes_ratio = jsonl_bytes as f64 / bin_bytes.max(1) as f64;
    let binary_cheaper_bytes = bin_bytes < jsonl_bytes;
    let binary_cheaper_wall = bin_ser < jsonl_ser;
    println!(
        "binary vs jsonl: {bytes_ratio:.2}x smaller, {:.1}x faster serialization",
        jsonl_ser / bin_ser.max(1e-12)
    );

    // Online-vs-post-hoc: replay the first replication through the
    // streaming-analytics observer and require each post-hoc percentile to
    // land inside the sketch's bucket, widened one log₂ bucket either way.
    let seed = opts.seed ^ 1;
    let workload = paper_scenario(opts.scenario, opts.nodes, opts.jobs, seed);
    let mut engine = build_engine(opts, opts.algorithm, &workload, seed);
    let shared = SharedAnalytics(std::rc::Rc::new(std::cell::RefCell::new(
        StreamAnalytics::new(SimDuration::from_secs_f64(opts.window_secs), 64),
    )));
    engine.set_observer(Box::new(shared.clone()));
    let report = engine.run();
    let analytics = shared.0.borrow();

    let mut online_checks: Vec<OnlineCheck> = Vec::new();
    let mut online_ok = true;
    let pairs = [
        ("wait", analytics.wait_sketch(), report.wait_stats.as_ref()),
        (
            "turnaround",
            analytics.turnaround_sketch(),
            report.turnaround_stats.as_ref(),
        ),
    ];
    for (metric, sketch, stats) in pairs {
        let Some(stats) = stats else { continue };
        if stats.count == 0 {
            continue;
        }
        for (q, post_secs) in [(0.50, stats.p50), (0.95, stats.p95), (0.99, stats.p99)] {
            let Some((lo, hi)) = sketch.quantile_bounds(q) else {
                continue;
            };
            let post_ns = (post_secs * 1e9).round() as u64;
            let lo_ns = lo / 2;
            let hi_ns = hi.saturating_mul(2);
            let ok = post_ns >= lo_ns && post_ns <= hi_ns;
            online_ok &= ok;
            online_checks.push(OnlineCheck {
                metric: metric.to_string(),
                quantile: q,
                post_hoc_ns: post_ns,
                bucket_lo_ns: lo_ns,
                bucket_hi_ns: hi_ns,
                ok,
            });
        }
    }
    println!(
        "online sketches vs post-hoc report: {}/{} percentiles within one log2 bucket",
        online_checks.iter().filter(|c| c.ok).count(),
        online_checks.len(),
    );

    if let Some(path) = &opts.json {
        let record = StreamRecord {
            algorithm: opts.algorithm.label().to_string(),
            scenario: opts.scenario.label().to_string(),
            nodes: opts.nodes,
            jobs: opts.jobs,
            replications: opts.replications,
            seed: opts.seed,
            threads: rayon::Pool::current_threads(),
            jsonl_bytes,
            binary_bytes: bin_bytes,
            bytes_ratio,
            binary_cheaper_bytes,
            binary_cheaper_wall,
            online_ok,
            observers: points,
            online_checks,
        };
        let f = std::fs::File::create(path).expect("create json output");
        serde_json::to_writer_pretty(f, &record).expect("write json");
        eprintln!("wrote bench stream to {path}");
    }

    if !binary_cheaper_bytes {
        eprintln!("FAIL: binary stream wrote {bin_bytes} bytes, not strictly fewer than JSONL's {jsonl_bytes}");
        std::process::exit(1);
    }
    if !binary_cheaper_wall {
        eprintln!(
            "FAIL: binary serialization took {:.2}ms, not strictly faster than JSONL's {:.2}ms",
            bin_ser * 1e3,
            jsonl_ser * 1e3,
        );
        std::process::exit(1);
    }
    if !online_ok {
        eprintln!("FAIL: an online percentile sketch disagrees with the post-hoc report");
        std::process::exit(1);
    }
}

fn main() {
    let opts = parse();
    match opts.threads {
        // `bench sweep` and `bench scale` manage thread counts themselves —
        // their `--threads` is a measurement axis, not a global override.
        Some(t) if opts.command != "bench-sweep" && opts.command != "bench-scale" => {
            rayon::Pool::install(t, || dispatch(&opts))
        }
        _ => dispatch(&opts),
    }
}

fn dispatch(opts: &Opts) {
    if opts.command == "report" {
        cmd_report(opts);
        return;
    }
    if opts.command == "watch" {
        cmd_watch(opts);
        return;
    }
    if opts.command == "events-convert" {
        cmd_events_convert(opts);
        return;
    }
    if opts.command == "check" {
        cmd_check(opts);
        return;
    }
    if opts.command == "bench-stream" {
        cmd_bench_stream(opts);
        return;
    }
    if opts.command == "bench-sweep" {
        cmd_bench_sweep(opts);
        return;
    }
    if opts.command == "bench-overlays" {
        cmd_bench_overlays(opts);
        return;
    }
    if opts.command == "bench-leases" {
        cmd_bench_leases(opts);
        return;
    }
    if opts.command == "bench-scenarios" {
        cmd_bench_scenarios(opts);
        return;
    }
    if opts.command == "bench-scale" {
        cmd_bench_scale(opts);
        return;
    }
    match &opts.scenario_spec {
        Some(spec) => println!(
            "scenario: {} — {} nodes, {} jobs, tenants [{}], seed {}",
            spec.name,
            spec.nodes,
            spec.jobs,
            spec.tenants
                .iter()
                .map(|t| t.name.as_str())
                .collect::<Vec<_>>()
                .join(", "),
            opts.seed
        ),
        None => println!(
            "workload: {} — {} nodes, {} jobs, seed {}",
            opts.scenario.label(),
            opts.nodes,
            opts.jobs,
            opts.seed
        ),
    }
    println!();

    let mut reports = Vec::new();
    match opts.command.as_str() {
        "run" if opts.replications > 1 => {
            reports = run_replicated(opts);
        }
        "run" => {
            let mut r = run_one(opts, opts.algorithm, true);
            print_report(&r);
            if let Some(spec) = &opts.scenario_spec {
                print_tenant_breakdown(&r, spec);
            }
            if let Some(path) = &opts.events {
                eprintln!("wrote event stream to {path}");
            }
            if let Some(path) = &opts.timeseries {
                let ts = r.timeseries.take().expect("sampling was enabled");
                let f = std::fs::File::create(path).expect("create timeseries output");
                let mut w = BufWriter::new(f);
                serde_json::to_writer_pretty(&mut w, &ts).expect("write timeseries");
                w.flush().expect("flush timeseries");
                eprintln!("wrote {} gauge samples to {path}", ts.len());
                r.timeseries = Some(ts);
            }
            reports.push(r);
        }
        "compare" => {
            println!(
                "{:<16} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10} {:>10} {:>11}",
                "algorithm",
                "mean wait",
                "std wait",
                "p50",
                "p95",
                "p99",
                "hops/job",
                "fairness",
                "completion"
            );
            // The algorithms fan out over the pool; results come back
            // in input order, so the table rows are stable.
            use rayon::prelude::*;
            let compared: Vec<SimReport> = [
                Algorithm::Central,
                Algorithm::RnTree,
                Algorithm::RnTreePastry,
                Algorithm::RnTreeTapestry,
                Algorithm::Can,
                Algorithm::CanPush,
                Algorithm::PubSub,
            ]
            .into_par_iter()
            .map(|alg| run_one(opts, alg, false))
            .collect();
            for r in compared {
                let w = r.wait_stats.unwrap_or_default();
                println!(
                    "{:<16} {:>9.1}s {:>9.1}s {:>8.1}s {:>8.1}s {:>8.1}s {:>10.1} {:>10.3} {:>10.1}%",
                    r.algorithm,
                    r.mean_wait(),
                    r.std_wait(),
                    w.p50,
                    w.p95,
                    w.p99,
                    r.match_hops.mean() + r.owner_hops.mean(),
                    r.load_fairness(),
                    100.0 * r.completion_rate(),
                );
                reports.push(r);
            }
        }
        _ => usage(),
    }

    if let Some(path) = &opts.json {
        let f = std::fs::File::create(path).expect("create json output");
        serde_json::to_writer_pretty(f, &reports).expect("write json");
        eprintln!("wrote {} report(s) to {path}", reports.len());
    }
}
